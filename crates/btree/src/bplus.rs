//! An external B+-tree over the accounting disk.
//!
//! Node encoding on a [`Block`]:
//!
//! * **leaf** (`tag = 0`): sorted data items; `next` links the leaf to
//!   its right sibling for range scans.
//! * **internal** (`tag = 1`): sorted routing entries
//!   `(min_key_of_subtree, child_block_id)`. Routing picks the rightmost
//!   entry with `min_key ≤ target` (falling back to the first entry), so
//!   the leftmost entry acts as `-∞` and separators never need repair on
//!   deletion.
//!
//! Nodes split at capacity `b`; the root split grows the height. The
//! internal memory footprint is O(1) words (root id, height, counters) —
//! like the paper's hash tables, the structure itself lives on disk.

use dxh_extmem::{
    Block, BlockId, Disk, ExtMemError, IoCostModel, IoSnapshot, Item, Key, MemDisk, MemoryBudget,
    Result, StorageBackend, Value, KEY_TOMBSTONE,
};
use dxh_tables::ExternalDictionary;

/// Configuration for [`BPlusTree`].
#[derive(Clone, Debug)]
pub struct BPlusTreeConfig {
    /// Block (node) capacity in items/entries.
    pub b: usize,
    /// Internal memory budget in items.
    pub m: usize,
    /// I/O pricing convention.
    pub cost: IoCostModel,
}

impl BPlusTreeConfig {
    /// Defaults: the paper's seek-dominated accounting.
    pub fn new(b: usize, m: usize) -> Self {
        BPlusTreeConfig { b, m, cost: IoCostModel::SeekDominated }
    }

    fn validate(&self) -> Result<()> {
        if self.b < 4 {
            return Err(ExtMemError::BadConfig("B+-tree needs b ≥ 4".into()));
        }
        if self.m < 2 * self.b + 8 {
            return Err(ExtMemError::BadConfig("B+-tree needs m ≥ 2b + 8".into()));
        }
        Ok(())
    }
}

const LEAF: u64 = 0;
const INTERNAL: u64 = 1;

/// What an insert into a subtree produced.
enum InsertUp {
    /// No structural change; `true` if a new key was added.
    Done(bool),
    /// The child split: route `(sep, right)` into the parent.
    Split { sep: Key, right: BlockId, inserted: bool },
}

/// An external-memory B+-tree dictionary.
///
/// ```
/// use dxh_btree::{BPlusTree, BPlusTreeConfig};
/// use dxh_tables::ExternalDictionary;
///
/// let mut t = BPlusTree::new(BPlusTreeConfig::new(16, 4096)).unwrap();
/// for k in 0..1000u64 {
///     t.insert(k, k * 7).unwrap();
/// }
/// assert_eq!(t.lookup(123).unwrap(), Some(861));
/// // Ordered scans — the thing hash tables cannot do:
/// let window = t.range(10, 14).unwrap();
/// let keys: Vec<u64> = window.iter().map(|it| it.key).collect();
/// assert_eq!(keys, vec![10, 11, 12, 13, 14]);
/// ```
pub struct BPlusTree<B: StorageBackend = MemDisk> {
    disk: Disk<B>,
    budget: MemoryBudget,
    root: BlockId,
    /// 0 = the root is a leaf.
    height: u32,
    len: usize,
    cfg: BPlusTreeConfig,
}

impl BPlusTree<MemDisk> {
    /// Builds a tree over a fresh in-memory disk.
    pub fn new(cfg: BPlusTreeConfig) -> Result<Self> {
        let disk = Disk::new(MemDisk::new(cfg.b), cfg.b, cfg.cost);
        Self::with_disk(disk, cfg)
    }
}

impl<B: StorageBackend> BPlusTree<B> {
    /// Builds a tree over a caller-provided disk.
    pub fn with_disk(mut disk: Disk<B>, cfg: BPlusTreeConfig) -> Result<Self> {
        cfg.validate()?;
        if disk.b() != cfg.b {
            return Err(ExtMemError::BadConfig("disk block size ≠ cfg.b".into()));
        }
        let mut budget = MemoryBudget::new(cfg.m);
        budget.reserve(2 * cfg.b + 8)?;
        let root = disk.allocate()?; // starts as an empty leaf (tag 0)
        Ok(BPlusTree { disk, budget, root, height: 0, len: 0, cfg })
    }

    /// Tree height (0 = root is a leaf); lookups cost `height + 1` reads.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Disk<B> {
        &self.disk
    }

    /// Routing: index of the child to descend into for `key`.
    fn route(entries: &[Item], key: Key) -> usize {
        // Rightmost entry with min_key ≤ key; entries are sorted.
        match entries.binary_search_by(|e| e.key.cmp(&key)) {
            Ok(i) => i,
            Err(0) => 0, // key below the leftmost min: leftmost acts as -∞
            Err(i) => i - 1,
        }
    }

    /// Splits the (full) sorted `blk` into itself (left half) plus a new
    /// right sibling; returns `(separator, right_id)`.
    fn split_node(&mut self, id: BlockId, blk: &mut Block) -> Result<(Key, BlockId)> {
        let mid = blk.len() / 2;
        let right_id = self.disk.allocate()?;
        let mut right = Block::new(self.cfg.b);
        right.set_tag(blk.tag());
        let moved: Vec<Item> = blk.items()[mid..].to_vec();
        for it in &moved {
            right.push(*it).expect("half fits");
        }
        blk.retain({
            let sep = moved[0].key;
            move |it| it.key < sep
        });
        if blk.tag() == LEAF {
            right.set_next(blk.next());
            blk.set_next(Some(right_id));
        }
        let sep = moved[0].key;
        self.disk.write(right_id, &right)?;
        self.disk.write(id, blk)?;
        Ok((sep, right_id))
    }

    fn insert_rec(&mut self, node: BlockId, height: u32, item: Item) -> Result<InsertUp> {
        if height == 0 {
            // Leaf: upsert in place, splitting when full.
            let mut blk = self.disk.read(node)?;
            if blk.replace(item.key, item.value).is_some() {
                self.disk.write(node, &blk)?;
                return Ok(InsertUp::Done(false));
            }
            let pos = blk.items().partition_point(|it| it.key < item.key);
            if !blk.is_full() {
                // Insert sorted. (Block has no insert-at; rebuild items.)
                let mut items = blk.items().to_vec();
                items.insert(pos, item);
                let mut nb = Block::new(self.cfg.b);
                nb.set_tag(LEAF);
                nb.set_next(blk.next());
                for it in items {
                    nb.push(it).expect("fits");
                }
                self.disk.write(node, &nb)?;
                return Ok(InsertUp::Done(true));
            }
            // Full: split, then place the item in the correct half,
            // preserving that half's sibling pointer.
            let (sep, right) = self.split_node(node, &mut blk)?;
            let target = if item.key < sep { node } else { right };
            self.disk.read_modify_write(target, |b| {
                let next = b.next();
                let pos = b.items().partition_point(|it| it.key < item.key);
                let mut items = b.items().to_vec();
                items.insert(pos, item);
                b.reset();
                b.set_tag(LEAF);
                b.set_next(next);
                for it in items {
                    b.push(it).expect("post-split room");
                }
            })?;
            return Ok(InsertUp::Split { sep, right, inserted: true });
        }
        // Internal node.
        let blk = self.disk.read(node)?;
        let idx = Self::route(blk.items(), item.key);
        let child = BlockId(blk.items()[idx].value);
        match self.insert_rec(child, height - 1, item)? {
            InsertUp::Done(inserted) => Ok(InsertUp::Done(inserted)),
            InsertUp::Split { sep, right, inserted } => {
                let blk = self.disk.read(node)?;
                let entry = Item::new(sep, right.raw());
                let pos = blk.items().partition_point(|it| it.key < sep);
                let mut entries = blk.items().to_vec();
                entries.insert(pos, entry);
                if entries.len() <= self.cfg.b {
                    let mut nb = Block::new(self.cfg.b);
                    nb.set_tag(INTERNAL);
                    for e in entries {
                        nb.push(e).expect("fits");
                    }
                    self.disk.write(node, &nb)?;
                    return Ok(InsertUp::Done(inserted));
                }
                // Split the internal node: left half stays, right half moves.
                let mid = entries.len() / 2;
                let right_id = self.disk.allocate()?;
                let mut left = Block::new(self.cfg.b);
                left.set_tag(INTERNAL);
                for e in &entries[..mid] {
                    left.push(*e).expect("fits");
                }
                let mut rightb = Block::new(self.cfg.b);
                rightb.set_tag(INTERNAL);
                for e in &entries[mid..] {
                    rightb.push(*e).expect("fits");
                }
                let up_sep = entries[mid].key;
                self.disk.write(node, &left)?;
                self.disk.write(right_id, &rightb)?;
                Ok(InsertUp::Split { sep: up_sep, right: right_id, inserted })
            }
        }
    }

    /// Ordered scan: all items with keys in `[lo, hi]`, using the leaf
    /// chain. Costs `height + ⌈matching leaves⌉` reads — the operation
    /// hash tables fundamentally cannot do.
    pub fn range(&mut self, lo: Key, hi: Key) -> Result<Vec<Item>> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        // Descend to the leaf that would hold `lo`.
        let mut node = self.root;
        for _ in 0..self.height {
            let blk = self.disk.read(node)?;
            let idx = Self::route(blk.items(), lo);
            node = BlockId(blk.items()[idx].value);
        }
        // Walk the chain.
        let mut cur = Some(node);
        while let Some(id) = cur {
            let blk = self.disk.read(id)?;
            for it in blk.items() {
                if it.key >= lo && it.key <= hi {
                    out.push(*it);
                }
            }
            if blk.items().last().is_some_and(|it| it.key > hi) {
                break;
            }
            cur = blk.next();
        }
        Ok(out)
    }
}

impl<B: StorageBackend> ExternalDictionary for BPlusTree<B> {
    fn insert(&mut self, key: Key, value: Value) -> Result<()> {
        if key == KEY_TOMBSTONE {
            return Err(ExtMemError::BadConfig("key u64::MAX is reserved".into()));
        }
        match self.insert_rec(self.root, self.height, Item::new(key, value))? {
            InsertUp::Done(inserted) => {
                self.len += inserted as usize;
            }
            InsertUp::Split { sep, right, inserted } => {
                // Grow: new root over (old_root, right).
                let old_root_min = 0u64; // leftmost entry acts as -∞
                let new_root = self.disk.allocate()?;
                let mut blk = Block::new(self.cfg.b);
                blk.set_tag(INTERNAL);
                blk.push(Item::new(old_root_min, self.root.raw())).expect("fresh");
                blk.push(Item::new(sep, right.raw())).expect("fresh");
                self.disk.write(new_root, &blk)?;
                self.root = new_root;
                self.height += 1;
                self.len += inserted as usize;
            }
        }
        Ok(())
    }

    fn lookup(&mut self, key: Key) -> Result<Option<Value>> {
        let mut node = self.root;
        for _ in 0..self.height {
            let blk = self.disk.read(node)?;
            let idx = Self::route(blk.items(), key);
            node = BlockId(blk.items()[idx].value);
        }
        Ok(self.disk.read(node)?.find(key))
    }

    /// Lazy deletion: the item is removed from its leaf; underflowing
    /// nodes are left in place (routing stays correct because separators
    /// are only ever lower bounds). Standard for read-mostly external
    /// trees; a rebalancing delete is future work.
    fn delete(&mut self, key: Key) -> Result<bool> {
        let mut node = self.root;
        for _ in 0..self.height {
            let blk = self.disk.read(node)?;
            let idx = Self::route(blk.items(), key);
            node = BlockId(blk.items()[idx].value);
        }
        let removed = self.disk.read_modify_write(node, |blk| blk.remove(key).is_some())?;
        if removed {
            self.len -= 1;
        }
        Ok(removed)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn disk_stats(&self) -> IoSnapshot {
        self.disk.epoch()
    }

    fn cost_model(&self) -> IoCostModel {
        self.disk.cost_model()
    }

    fn memory_used(&self) -> usize {
        self.budget.used()
    }

    fn block_capacity(&self) -> usize {
        self.cfg.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(b: usize) -> BPlusTree {
        BPlusTree::new(BPlusTreeConfig::new(b, 4096)).unwrap()
    }

    #[test]
    fn round_trip_with_splits() {
        let mut t = tree(4);
        for k in 0..500u64 {
            t.insert(k, k * 2).unwrap();
        }
        assert!(t.height() >= 3, "tiny nodes force height: {}", t.height());
        for k in 0..500u64 {
            assert_eq!(t.lookup(k).unwrap(), Some(k * 2), "key {k}");
        }
        assert_eq!(t.lookup(999).unwrap(), None);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn random_order_inserts() {
        let mut t = tree(8);
        let mut keys: Vec<u64> = (0..1000).map(|i| i * 7919 % 65536).collect();
        keys.sort_unstable();
        keys.dedup();
        // shuffle deterministically
        let mut shuffled = keys.clone();
        for i in (1..shuffled.len()).rev() {
            let j = (i * 2654435761) % (i + 1);
            shuffled.swap(i, j);
        }
        for &k in &shuffled {
            t.insert(k, k + 1).unwrap();
        }
        for &k in &keys {
            assert_eq!(t.lookup(k).unwrap(), Some(k + 1));
        }
        assert_eq!(t.len(), keys.len());
    }

    #[test]
    fn upsert_replaces() {
        let mut t = tree(4);
        for k in 0..100u64 {
            t.insert(k, 1).unwrap();
        }
        for k in 0..100u64 {
            t.insert(k, 2).unwrap();
        }
        assert_eq!(t.len(), 100);
        for k in 0..100u64 {
            assert_eq!(t.lookup(k).unwrap(), Some(2));
        }
    }

    #[test]
    fn lookup_cost_is_height_plus_one() {
        let mut t = tree(8);
        for k in 0..2000u64 {
            t.insert(k, k).unwrap();
        }
        let h = t.height() as u64;
        let e = t.disk.epoch();
        for k in 0..100u64 {
            let _ = t.lookup(k * 17).unwrap();
        }
        let per = t.disk.since(&e).total(t.cost_model()) as f64 / 100.0;
        assert!((per - (h + 1) as f64).abs() < 1e-9, "lookup cost {per} = height+1 = {}", h + 1);
    }

    #[test]
    fn range_scan_returns_sorted_window() {
        let mut t = tree(4);
        for k in (0..400u64).step_by(2) {
            t.insert(k, k).unwrap();
        }
        let got = t.range(100, 120).unwrap();
        let keys: Vec<u64> = got.iter().map(|it| it.key).collect();
        assert_eq!(keys, vec![100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120]);
        assert!(t.range(1000, 2000).unwrap().is_empty());
        assert!(t.range(10, 5).unwrap().is_empty(), "inverted range");
    }

    #[test]
    fn full_scan_via_range_sees_everything_in_order() {
        let mut t = tree(4);
        let keys: Vec<u64> = (0..300).map(|i| (i * 2654435761u64) % 100_000).collect();
        let mut expect: Vec<u64> = keys.clone();
        expect.sort_unstable();
        expect.dedup();
        for &k in &keys {
            t.insert(k, k).unwrap();
        }
        let got: Vec<u64> = t.range(0, u64::MAX - 1).unwrap().iter().map(|it| it.key).collect();
        assert_eq!(got, expect, "leaf chain yields global sorted order");
    }

    #[test]
    fn delete_removes_and_reports() {
        let mut t = tree(4);
        for k in 0..200u64 {
            t.insert(k, k).unwrap();
        }
        for k in (0..200u64).step_by(2) {
            assert!(t.delete(k).unwrap());
        }
        assert!(!t.delete(0).unwrap());
        assert_eq!(t.len(), 100);
        for k in 0..200u64 {
            let expect = if k % 2 == 0 { None } else { Some(k) };
            assert_eq!(t.lookup(k).unwrap(), expect);
        }
    }

    #[test]
    fn insert_cost_scales_with_height() {
        let mut t = tree(64);
        let n = 20_000u64;
        for k in 0..n {
            t.insert(k, k).unwrap();
        }
        let tu = t.disk.epoch().total(t.cost_model()) as f64 / n as f64;
        let h = t.height() as f64;
        // descent reads + leaf write ≈ height + 1 per insert (+ splits).
        assert!(tu >= h, "tu {tu} ≥ height {h}");
        assert!(tu <= h + 2.5, "tu {tu} ≤ height + 2.5");
    }

    #[test]
    fn reserved_key_rejected() {
        let mut t = tree(4);
        assert!(t.insert(u64::MAX, 0).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(BPlusTreeConfig::new(2, 4096).validate().is_err());
        assert!(BPlusTreeConfig::new(8, 4).validate().is_err());
        assert!(BPlusTreeConfig::new(8, 4096).validate().is_ok());
    }
}
