//! # dxh-btree — the comparison-based baseline
//!
//! The paper's opening line of argument is that hash tables beat
//! comparison-based structures for point lookups in external memory:
//! a B-tree pays `Θ(log_B n)` I/Os per search while hashing pays
//! `1 + 1/2^Ω(b)`. And on the lower-bound side, the only prior
//! buffering lower bound (Brodal–Fagerberg) lives in the comparison
//! model — inapplicable to hashing — which is why the paper's
//! indivisibility-model bound was new.
//!
//! This crate provides the external [`BPlusTree`] that makes those
//! comparisons concrete in the same accounting framework:
//!
//! * point lookups cost exactly `height + 1` block reads;
//! * inserts cost a root-to-leaf descent plus one combined I/O (splits
//!   amortize to `O(1/b)`);
//! * unlike any hash table, it supports ordered **range scans** via
//!   leaf chaining — the structural advantage the comparison world
//!   keeps.
//!
//! The `exp_comparison` binary puts it next to the hash structures on
//! identical workloads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bplus;

pub use bplus::{BPlusTree, BPlusTreeConfig};
