//! Model-based property tests: the external B+-tree must agree with
//! `std::collections::BTreeMap` on operations *and* ordered scans.

use std::collections::BTreeMap;

use dxh_btree::{BPlusTree, BPlusTreeConfig};
use dxh_tables::ExternalDictionary;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreemap(
        ops in proptest::collection::vec((0u8..3, 0u64..300, any::<u64>()), 0..300),
        b in 4usize..10,
    ) {
        let mut t = BPlusTree::new(BPlusTreeConfig::new(b, 4096)).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (kind, k, v) in ops {
            match kind {
                0 => {
                    t.insert(k, v).unwrap();
                    model.insert(k, v);
                }
                1 => {
                    prop_assert_eq!(t.lookup(k).unwrap(), model.get(&k).copied());
                }
                _ => {
                    prop_assert_eq!(t.delete(k).unwrap(), model.remove(&k).is_some());
                }
            }
            prop_assert_eq!(t.len(), model.len());
        }
        for (&k, &v) in &model {
            prop_assert_eq!(t.lookup(k).unwrap(), Some(v));
        }
    }

    #[test]
    fn range_scans_match_btreemap(
        keys in proptest::collection::btree_set(0u64..2000, 0..300),
        lo in 0u64..2000,
        width in 0u64..500,
        b in 4usize..10,
    ) {
        let mut t = BPlusTree::new(BPlusTreeConfig::new(b, 4096)).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &keys {
            t.insert(k, k * 3).unwrap();
            model.insert(k, k * 3);
        }
        let hi = lo.saturating_add(width);
        let got: Vec<(u64, u64)> =
            t.range(lo, hi).unwrap().iter().map(|it| (it.key, it.value)).collect();
        let expect: Vec<(u64, u64)> =
            model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, expect, "ordered window identical");
    }

    #[test]
    fn scan_after_deletes_is_still_ordered(
        keys in proptest::collection::btree_set(0u64..1000, 1..200),
        del_mod in 2u64..5,
    ) {
        let mut t = BPlusTree::new(BPlusTreeConfig::new(4, 4096)).unwrap();
        for &k in &keys {
            t.insert(k, k).unwrap();
        }
        for &k in &keys {
            if k % del_mod == 0 {
                t.delete(k).unwrap();
            }
        }
        let got: Vec<u64> = t.range(0, u64::MAX - 1).unwrap().iter().map(|it| it.key).collect();
        let expect: Vec<u64> = keys.iter().copied().filter(|k| k % del_mod != 0).collect();
        prop_assert_eq!(got, expect);
    }
}
