//! Property-based tests for the external-memory substrate.

use dxh_extmem::{
    Block, BlockId, Disk, EvictionPolicy, FileDisk, IoCostModel, Item, MemDisk, StorageBackend,
};
use proptest::prelude::*;

fn arb_item() -> impl Strategy<Value = Item> {
    (0..u64::MAX - 1, any::<u64>()).prop_map(|(k, v)| Item::new(k, v))
}

proptest! {
    /// Encoding then decoding any block is the identity.
    #[test]
    fn block_codec_round_trip(
        cap in 1usize..64,
        items in proptest::collection::vec(arb_item(), 0..64),
        tag in any::<u64>(),
        next in proptest::option::of(0u64..1000),
    ) {
        let mut blk = Block::new(cap);
        for it in items.into_iter().take(cap) {
            blk.push(it).unwrap();
        }
        blk.set_tag(tag);
        blk.set_next(next.map(BlockId));
        let mut buf = vec![0u8; Block::encoded_len(cap)];
        blk.encode_into(&mut buf);
        let decoded = Block::decode_from(cap, &buf).unwrap();
        prop_assert_eq!(decoded, blk);
    }

    /// MemDisk and FileDisk observe identical contents under an arbitrary
    /// schedule of allocate / write / free operations.
    #[test]
    fn backends_agree(ops in proptest::collection::vec((0u8..3, any::<u64>()), 1..60)) {
        let mut mem = MemDisk::new(4);
        let mut file = FileDisk::temp(4).unwrap();
        let mut live: Vec<BlockId> = Vec::new();
        for (op, x) in ops {
            match op {
                0 => {
                    let a = mem.allocate().unwrap();
                    let b = file.allocate().unwrap();
                    prop_assert_eq!(a, b);
                    live.push(a);
                }
                1 if !live.is_empty() => {
                    let id = live[(x % live.len() as u64) as usize];
                    let mut blk = Block::new(4);
                    blk.push(Item::new(x % (u64::MAX - 1), x)).unwrap();
                    mem.write(id, &blk).unwrap();
                    file.write(id, &blk).unwrap();
                }
                2 if !live.is_empty() => {
                    let idx = (x % live.len() as u64) as usize;
                    let id = live.swap_remove(idx);
                    mem.free(id).unwrap();
                    file.free(id).unwrap();
                }
                _ => {}
            }
        }
        prop_assert_eq!(mem.live_blocks(), file.live_blocks());
        for id in live {
            prop_assert_eq!(mem.read(id).unwrap(), file.read(id).unwrap());
        }
    }

    /// A pooled disk exposes exactly the same data as an unpooled one under
    /// an arbitrary schedule, for every eviction policy, and never performs
    /// MORE I/Os than the unpooled disk.
    #[test]
    fn pool_is_transparent(
        ops in proptest::collection::vec((0u8..3, any::<u64>(), any::<u64>()), 1..80),
        frames in 1usize..6,
        policy_idx in 0usize..3,
    ) {
        let policy = [EvictionPolicy::Lru, EvictionPolicy::Fifo, EvictionPolicy::Clock][policy_idx];
        let mut plain = Disk::new(MemDisk::new(4), 4, IoCostModel::Strict);
        let mut pooled = Disk::new(MemDisk::new(4), 4, IoCostModel::Strict);
        pooled.attach_pool(frames, policy);
        let mut live: Vec<BlockId> = Vec::new();
        for (op, x, y) in ops {
            match op {
                0 => {
                    let a = plain.allocate().unwrap();
                    let b = pooled.allocate().unwrap();
                    prop_assert_eq!(a, b);
                    live.push(a);
                }
                1 if !live.is_empty() => {
                    let id = live[(x % live.len() as u64) as usize];
                    let r1 = plain.read(id).unwrap();
                    let r2 = pooled.read(id).unwrap();
                    prop_assert_eq!(r1, r2);
                }
                2 if !live.is_empty() => {
                    let id = live[(x % live.len() as u64) as usize];
                    let key = y % (u64::MAX - 1);
                    plain.read_modify_write(id, |b| {
                        if !b.is_full() { b.push(Item::new(key, y)).unwrap(); }
                    }).unwrap();
                    pooled.read_modify_write(id, |b| {
                        if !b.is_full() { b.push(Item::new(key, y)).unwrap(); }
                    }).unwrap();
                }
                _ => {}
            }
        }
        pooled.flush().unwrap();
        prop_assert!(pooled.total_ios() <= plain.total_ios(),
            "a cache never increases I/Os: pooled {} > plain {}",
            pooled.total_ios(), plain.total_ios());
        for id in live {
            let a = plain.read(id).unwrap();
            let b = pooled.backend_mut().read(id).unwrap();
            prop_assert_eq!(a, b, "post-flush backend contents agree");
        }
    }

    /// Budget arithmetic never goes negative and peak dominates used.
    #[test]
    fn budget_invariants(ops in proptest::collection::vec((any::<bool>(), 0usize..100), 0..50)) {
        let mut b = dxh_extmem::MemoryBudget::with_enforcement(
            1000, dxh_extmem::Enforcement::Track);
        let mut model_used = 0usize;
        for (is_reserve, n) in ops {
            if is_reserve {
                b.reserve(n).unwrap();
                model_used += n;
            } else {
                let n = n.min(model_used);
                b.release(n);
                model_used -= n;
            }
            prop_assert_eq!(b.used(), model_used);
            prop_assert!(b.peak() >= b.used());
        }
    }
}
