//! Error type shared by the external-memory substrate.

use crate::block::BlockId;

/// Result alias for substrate operations.
pub type Result<T> = std::result::Result<T, ExtMemError>;

/// Errors raised by the external-memory substrate.
#[derive(Debug)]
pub enum ExtMemError {
    /// An item was pushed into a block that already holds `capacity` items.
    BlockOverflow {
        /// The block's capacity `b` in items.
        capacity: usize,
    },
    /// A block id does not name an allocated block.
    BadBlockId(BlockId),
    /// A reservation would exceed the internal-memory budget `m`.
    OutOfBudget {
        /// Items requested by the failing reservation.
        requested: usize,
        /// Items already in use.
        used: usize,
        /// The budget capacity `m`.
        capacity: usize,
    },
    /// An operating-system I/O error from the file-backed disk.
    Io(std::io::Error),
    /// On-disk bytes that do not decode to a valid block.
    Corrupt(String),
    /// A structure was configured with invalid parameters.
    BadConfig(String),
    /// A fixed-capacity structure ran out of slots.
    CapacityExhausted {
        /// Items stored when capacity ran out.
        len: usize,
    },
}

impl core::fmt::Display for ExtMemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExtMemError::BlockOverflow { capacity } => {
                write!(f, "block overflow: capacity is {capacity} items")
            }
            ExtMemError::BadBlockId(id) => write!(f, "unallocated block id {id:?}"),
            ExtMemError::OutOfBudget { requested, used, capacity } => write!(
                f,
                "internal-memory budget exceeded: requested {requested} items \
                 with {used}/{capacity} already in use"
            ),
            ExtMemError::Io(e) => write!(f, "file-disk I/O error: {e}"),
            ExtMemError::Corrupt(msg) => write!(f, "corrupt block: {msg}"),
            ExtMemError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            ExtMemError::CapacityExhausted { len } => {
                write!(f, "fixed-capacity structure exhausted at {len} items")
            }
        }
    }
}

impl std::error::Error for ExtMemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExtMemError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ExtMemError {
    fn from(e: std::io::Error) -> Self {
        ExtMemError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let s = ExtMemError::BlockOverflow { capacity: 8 }.to_string();
        assert!(s.contains("capacity is 8"));
        let s = ExtMemError::OutOfBudget { requested: 4, used: 10, capacity: 12 }.to_string();
        assert!(s.contains("requested 4"));
        assert!(s.contains("10/12"));
    }

    #[test]
    fn io_error_round_trips_through_from() {
        let e: ExtMemError = std::io::Error::other("boom").into();
        assert!(matches!(e, ExtMemError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn non_io_errors_have_no_source() {
        let e = ExtMemError::Corrupt("x".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
