//! A block buffer pool: the generic face of "buffering".
//!
//! The paper asks whether internal memory used as a buffer can reduce the
//! amortized insertion cost of a hash table. This pool is the *generic*
//! form of such buffering — a page cache with a pluggable eviction policy —
//! and the A1 ablation uses it to show that generic caching cannot beat
//! Theorem 1, while the paper's *structural* buffering (H0 of the
//! logarithmic method) can, at the price the theorem demands.

use std::collections::HashMap;

use crate::block::{Block, BlockId};

/// Replacement policy for [`BufferPool`] frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EvictionPolicy {
    /// Evict the least recently used frame.
    #[default]
    Lru,
    /// Evict the oldest-resident frame, ignoring accesses.
    Fifo,
    /// Second-chance clock: a cheap LRU approximation.
    Clock,
}

/// Hit/miss/eviction counters of a [`BufferPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups satisfied from the pool.
    pub hits: u64,
    /// Lookups that had to go to the backend.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Evicted frames that were dirty and had to be written back.
    pub writebacks: u64,
}

impl PoolStats {
    /// Hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

/// An intrusive doubly-linked list over slab indices (no per-node
/// allocation; O(1) link/unlink). Front = most recent.
struct LinkedOrder {
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize,
    tail: usize,
}

impl LinkedOrder {
    fn new(capacity: usize) -> Self {
        LinkedOrder { prev: vec![NIL; capacity], next: vec![NIL; capacity], head: NIL, tail: NIL }
    }

    fn push_front(&mut self, i: usize) {
        self.prev[i] = NIL;
        self.next[i] = self.head;
        if self.head != NIL {
            self.prev[self.head] = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.prev[i], self.next[i]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        self.prev[i] = NIL;
        self.next[i] = NIL;
    }

    fn move_to_front(&mut self, i: usize) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.push_front(i);
    }

    fn back(&self) -> Option<usize> {
        if self.tail == NIL {
            None
        } else {
            Some(self.tail)
        }
    }
}

struct Frame {
    id: BlockId,
    block: Block,
    dirty: bool,
    refbit: bool,
}

/// A fixed-capacity write-back cache of disk blocks.
///
/// The pool itself performs no I/O: [`crate::Disk`] drives it and charges
/// the I/Os (misses → reads, dirty evictions/flushes → writes).
pub struct BufferPool {
    capacity: usize,
    policy: EvictionPolicy,
    frames: Vec<Frame>,
    free: Vec<usize>,
    map: HashMap<BlockId, usize>,
    order: LinkedOrder,
    clock_hand: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool holding up to `capacity` frames (must be ≥ 1).
    pub fn new(capacity: usize, policy: EvictionPolicy) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            policy,
            frames: Vec::with_capacity(capacity),
            free: Vec::new(),
            map: HashMap::with_capacity(capacity),
            order: LinkedOrder::new(capacity),
            clock_hand: 0,
            stats: PoolStats::default(),
        }
    }

    /// Frame capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently resident.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no frames are resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    #[inline]
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Whether `id` is resident (does not count as an access).
    #[inline]
    pub fn contains(&self, id: BlockId) -> bool {
        self.map.contains_key(&id)
    }

    /// Records a miss discovered by the caller through another path
    /// (e.g. a `contains` probe followed by a backend read), keeping the
    /// hit/miss statistics honest.
    #[inline]
    pub fn record_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Looks up `id`, counting a hit or miss; on hit returns the cached
    /// block and updates recency state.
    pub fn get(&mut self, id: BlockId) -> Option<&Block> {
        match self.map.get(&id).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.touch(idx);
                Some(&self.frames[idx].block)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Like [`BufferPool::get`] but allows in-place mutation; the frame is
    /// marked dirty.
    pub fn get_mut(&mut self, id: BlockId) -> Option<&mut Block> {
        match self.map.get(&id).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.touch(idx);
                self.frames[idx].dirty = true;
                Some(&mut self.frames[idx].block)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn touch(&mut self, idx: usize) {
        match self.policy {
            EvictionPolicy::Lru => self.order.move_to_front(idx),
            EvictionPolicy::Fifo => {}
            EvictionPolicy::Clock => self.frames[idx].refbit = true,
        }
    }

    /// Inserts (or overwrites) `id`. Returns an evicted dirty block that
    /// the caller must write back, if any.
    ///
    /// Does not count a hit/miss: callers decide whether the insert came
    /// from a backend read (miss already counted via `get`).
    pub fn insert(&mut self, id: BlockId, block: Block, dirty: bool) -> Option<(BlockId, Block)> {
        if let Some(&idx) = self.map.get(&id) {
            let f = &mut self.frames[idx];
            f.block = block;
            f.dirty = f.dirty || dirty;
            self.touch(idx);
            return None;
        }
        let mut writeback = None;
        if self.map.len() >= self.capacity {
            writeback = self.evict_one();
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.frames[i] = Frame { id, block, dirty, refbit: true };
                i
            }
            None => {
                self.frames.push(Frame { id, block, dirty, refbit: true });
                self.frames.len() - 1
            }
        };
        self.map.insert(id, idx);
        match self.policy {
            EvictionPolicy::Lru | EvictionPolicy::Fifo => self.order.push_front(idx),
            EvictionPolicy::Clock => {}
        }
        writeback
    }

    fn evict_one(&mut self) -> Option<(BlockId, Block)> {
        let victim = match self.policy {
            EvictionPolicy::Lru | EvictionPolicy::Fifo => {
                let idx = self.order.back().expect("pool full implies nonempty order");
                self.order.unlink(idx);
                idx
            }
            EvictionPolicy::Clock => self.clock_victim(),
        };
        self.stats.evictions += 1;
        let frame = &mut self.frames[victim];
        let id = frame.id;
        self.map.remove(&id);
        self.free.push(victim);
        let dirty = frame.dirty;
        let block = core::mem::replace(&mut frame.block, Block::new(0));
        if dirty {
            self.stats.writebacks += 1;
            Some((id, block))
        } else {
            None
        }
    }

    fn clock_victim(&mut self) -> usize {
        // Sweep slots; occupied slots with refbit set get a second chance.
        // Terminates: each occupied frame's bit is cleared at most once per
        // sweep, and the pool is full when this is called.
        loop {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % self.frames.len();
            if self.free.contains(&idx) {
                continue;
            }
            if self.frames[idx].refbit {
                self.frames[idx].refbit = false;
            } else {
                return idx;
            }
        }
    }

    /// Removes `id` without writeback (e.g. the block was freed).
    pub fn discard(&mut self, id: BlockId) {
        if let Some(idx) = self.map.remove(&id) {
            match self.policy {
                EvictionPolicy::Lru | EvictionPolicy::Fifo => self.order.unlink(idx),
                EvictionPolicy::Clock => {}
            }
            self.frames[idx].block = Block::new(0);
            self.frames[idx].dirty = false;
            self.free.push(idx);
        }
    }

    /// Takes every dirty frame's contents for writeback, marking them clean
    /// (they stay resident).
    pub fn take_dirty(&mut self) -> Vec<(BlockId, Block)> {
        let mut out = Vec::new();
        for f in &mut self.frames {
            if f.dirty && self.map.contains_key(&f.id) {
                f.dirty = false;
                out.push((f.id, f.block.clone()));
            }
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(cap: usize, key: u64) -> Block {
        let mut b = Block::new(cap);
        b.push(crate::item::Item::key_only(key)).unwrap();
        b
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut p = BufferPool::new(2, EvictionPolicy::Lru);
        assert!(p.get(BlockId(1)).is_none());
        p.insert(BlockId(1), blk(4, 1), false);
        assert!(p.get(BlockId(1)).is_some());
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = BufferPool::new(2, EvictionPolicy::Lru);
        p.insert(BlockId(1), blk(4, 1), false);
        p.insert(BlockId(2), blk(4, 2), false);
        let _ = p.get(BlockId(1)); // 2 is now LRU
        p.insert(BlockId(3), blk(4, 3), false);
        assert!(p.contains(BlockId(1)));
        assert!(!p.contains(BlockId(2)));
        assert!(p.contains(BlockId(3)));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut p = BufferPool::new(2, EvictionPolicy::Fifo);
        p.insert(BlockId(1), blk(4, 1), false);
        p.insert(BlockId(2), blk(4, 2), false);
        let _ = p.get(BlockId(1)); // would save 1 under LRU; FIFO ignores
        p.insert(BlockId(3), blk(4, 3), false);
        assert!(!p.contains(BlockId(1)));
        assert!(p.contains(BlockId(2)));
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut p = BufferPool::new(2, EvictionPolicy::Clock);
        p.insert(BlockId(1), blk(4, 1), false);
        p.insert(BlockId(2), blk(4, 2), false);
        let _ = p.get(BlockId(1)); // sets refbit on 1 (already set on insert)
                                   // Insert: hand sweeps, clears bits, eventually evicts someone.
        p.insert(BlockId(3), blk(4, 3), false);
        assert_eq!(p.len(), 2);
        assert!(p.contains(BlockId(3)));
    }

    #[test]
    fn dirty_eviction_returns_writeback() {
        let mut p = BufferPool::new(1, EvictionPolicy::Lru);
        p.insert(BlockId(1), blk(4, 1), true);
        let wb = p.insert(BlockId(2), blk(4, 2), false);
        let (id, b) = wb.expect("dirty block must be written back");
        assert_eq!(id, BlockId(1));
        assert!(b.contains(1));
        assert_eq!(p.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_needs_no_writeback() {
        let mut p = BufferPool::new(1, EvictionPolicy::Lru);
        p.insert(BlockId(1), blk(4, 1), false);
        assert!(p.insert(BlockId(2), blk(4, 2), false).is_none());
        assert_eq!(p.stats().evictions, 1);
        assert_eq!(p.stats().writebacks, 0);
    }

    #[test]
    fn get_mut_marks_dirty() {
        let mut p = BufferPool::new(1, EvictionPolicy::Lru);
        p.insert(BlockId(1), blk(4, 1), false);
        p.get_mut(BlockId(1)).unwrap().push(crate::item::Item::key_only(9)).unwrap();
        let wb = p.insert(BlockId(2), blk(4, 2), false);
        assert!(wb.is_some(), "mutated frame must be written back");
    }

    #[test]
    fn take_dirty_flushes_and_cleans() {
        let mut p = BufferPool::new(3, EvictionPolicy::Lru);
        p.insert(BlockId(1), blk(4, 1), true);
        p.insert(BlockId(2), blk(4, 2), false);
        p.insert(BlockId(3), blk(4, 3), true);
        let d = p.take_dirty();
        assert_eq!(d.iter().map(|(id, _)| id.raw()).collect::<Vec<_>>(), vec![1, 3]);
        assert!(p.take_dirty().is_empty(), "second flush finds nothing dirty");
        assert_eq!(p.len(), 3, "flush keeps frames resident");
    }

    #[test]
    fn discard_drops_without_writeback() {
        let mut p = BufferPool::new(2, EvictionPolicy::Lru);
        p.insert(BlockId(1), blk(4, 1), true);
        p.discard(BlockId(1));
        assert!(!p.contains(BlockId(1)));
        assert!(p.take_dirty().is_empty());
        // Slot is reusable.
        p.insert(BlockId(2), blk(4, 2), false);
        p.insert(BlockId(3), blk(4, 3), false);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn overwrite_insert_keeps_dirty_sticky() {
        let mut p = BufferPool::new(2, EvictionPolicy::Lru);
        p.insert(BlockId(1), blk(4, 1), true);
        p.insert(BlockId(1), blk(4, 10), false); // overwrite with clean data
        let d = p.take_dirty();
        assert_eq!(d.len(), 1, "dirtiness is sticky until flushed");
        assert!(d[0].1.contains(10));
    }

    #[test]
    fn hit_ratio() {
        let mut p = BufferPool::new(2, EvictionPolicy::Lru);
        p.insert(BlockId(1), blk(4, 1), false);
        let _ = p.get(BlockId(1));
        let _ = p.get(BlockId(2));
        assert!((p.stats().hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(PoolStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn heavy_churn_is_consistent() {
        // Many inserts/gets across all policies; pool size must never
        // exceed capacity and resident set must match the map.
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Fifo, EvictionPolicy::Clock] {
            let mut p = BufferPool::new(8, policy);
            for i in 0..1000u64 {
                let id = BlockId(i % 50);
                if p.get(id).is_none() {
                    p.insert(id, blk(4, i), i % 3 == 0);
                }
                assert!(p.len() <= 8);
            }
        }
    }
}
