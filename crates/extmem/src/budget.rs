//! The internal-memory budget `m`.
//!
//! The paper's whole question is what a structure can do with `m` items of
//! internal memory. To keep experiments honest, every structure in this
//! workspace charges its memory-resident state — in items, the same unit
//! as `m` — to a [`MemoryBudget`] and the harness can assert the budget
//! was never exceeded.

use crate::error::{ExtMemError, Result};

/// What happens when a reservation would exceed the budget.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Enforcement {
    /// Reservations beyond capacity return [`ExtMemError::OutOfBudget`].
    #[default]
    Error,
    /// Reservations beyond capacity panic (use in tests to catch leaks).
    Panic,
    /// Overcommit is allowed but recorded; `peak()` exposes the damage.
    /// Useful when sweeping `m` below a structure's working minimum to see
    /// how much memory it genuinely needs.
    Track,
}

/// Tracks internal-memory usage (in items) against a capacity `m`.
#[derive(Clone, Debug)]
pub struct MemoryBudget {
    capacity: usize,
    used: usize,
    peak: usize,
    enforcement: Enforcement,
}

impl MemoryBudget {
    /// A budget of `m` items with the default ([`Enforcement::Error`])
    /// policy.
    pub fn new(m: usize) -> Self {
        MemoryBudget { capacity: m, used: 0, peak: 0, enforcement: Enforcement::Error }
    }

    /// A budget with an explicit enforcement policy.
    pub fn with_enforcement(m: usize, enforcement: Enforcement) -> Self {
        MemoryBudget { capacity: m, used: 0, peak: 0, enforcement }
    }

    /// The capacity `m` in items.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently reserved.
    #[inline]
    pub fn used(&self) -> usize {
        self.used
    }

    /// High-water mark of reservations.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Items still available.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.capacity.saturating_sub(self.used)
    }

    /// Whether usage ever exceeded capacity (only possible under
    /// [`Enforcement::Track`]).
    #[inline]
    pub fn overcommitted(&self) -> bool {
        self.peak > self.capacity
    }

    /// Reserves `n` items.
    pub fn reserve(&mut self, n: usize) -> Result<()> {
        let would = self.used + n;
        if would > self.capacity {
            match self.enforcement {
                Enforcement::Error => {
                    return Err(ExtMemError::OutOfBudget {
                        requested: n,
                        used: self.used,
                        capacity: self.capacity,
                    })
                }
                Enforcement::Panic => panic!(
                    "memory budget exceeded: requested {n} with {}/{} in use",
                    self.used, self.capacity
                ),
                Enforcement::Track => {}
            }
        }
        self.used = would;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Releases `n` previously reserved items. Panics (debug) on underflow —
    /// releasing more than was reserved is always a bug in the structure.
    pub fn release(&mut self, n: usize) {
        debug_assert!(n <= self.used, "budget underflow: release {n} with {} used", self.used);
        self.used = self.used.saturating_sub(n);
    }

    /// Adjusts a reservation from `old` to `new` items.
    pub fn adjust(&mut self, old: usize, new: usize) -> Result<()> {
        if new >= old {
            self.reserve(new - old)
        } else {
            self.release(old - new);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let mut b = MemoryBudget::new(10);
        b.reserve(4).unwrap();
        assert_eq!(b.used(), 4);
        assert_eq!(b.remaining(), 6);
        b.release(1);
        assert_eq!(b.used(), 3);
        assert_eq!(b.peak(), 4);
    }

    #[test]
    fn error_enforcement_rejects_overcommit() {
        let mut b = MemoryBudget::new(2);
        b.reserve(2).unwrap();
        let e = b.reserve(1).unwrap_err();
        assert!(matches!(e, ExtMemError::OutOfBudget { requested: 1, used: 2, capacity: 2 }));
        assert_eq!(b.used(), 2, "failed reservation does not change usage");
    }

    #[test]
    #[should_panic(expected = "memory budget exceeded")]
    fn panic_enforcement_panics() {
        let mut b = MemoryBudget::with_enforcement(1, Enforcement::Panic);
        b.reserve(2).unwrap();
    }

    #[test]
    fn track_enforcement_records_overcommit() {
        let mut b = MemoryBudget::with_enforcement(2, Enforcement::Track);
        b.reserve(5).unwrap();
        assert!(b.overcommitted());
        assert_eq!(b.peak(), 5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn adjust_grows_and_shrinks() {
        let mut b = MemoryBudget::new(10);
        b.reserve(3).unwrap();
        b.adjust(3, 7).unwrap();
        assert_eq!(b.used(), 7);
        b.adjust(7, 2).unwrap();
        assert_eq!(b.used(), 2);
        assert!(b.adjust(2, 11).is_err());
    }

    #[test]
    fn peak_is_monotone() {
        let mut b = MemoryBudget::new(10);
        b.reserve(8).unwrap();
        b.release(8);
        b.reserve(1).unwrap();
        assert_eq!(b.peak(), 8);
    }
}
