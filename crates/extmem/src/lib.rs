//! # dxh-extmem — the external memory model substrate
//!
//! This crate implements the standard external memory (EM) model of
//! Aggarwal and Vitter that the paper *Dynamic External Hashing: The Limit
//! of Buffering* (Wei, Yi, Zhang — SPAA 2009) states all of its bounds in:
//!
//! * the **disk** is an unbounded array of blocks, each holding up to `b`
//!   items ([`Block`], [`Disk`]);
//! * the **internal memory** holds up to `m` items ([`MemoryBudget`]);
//! * computation is free; the complexity measure is the number of block
//!   transfers (**I/Os**) performed ([`IoStats`]).
//!
//! Three storage backends are provided: an in-RAM [`MemDisk`] used by
//! the experiments (exact, fast, deterministic), a real-file
//! [`FileDisk`] that demonstrates the same code paths against a
//! filesystem, and a crash-simulation [`SimDisk`] whose unsynced writes
//! are volatile and whose seeded [`FaultPlan`] can crash or fault any
//! I/O by index — the engine of the recovery torture harness. Backends
//! that additionally expose the allocator-persistence protocol
//! (free-list serialization, deferred recycling) implement
//! [`PersistentBackend`].
//!
//! ## I/O accounting convention
//!
//! Footnote 2 of the paper counts a read of a block immediately followed by
//! writing it back as **one** I/O, because seek time dominates. The
//! [`IoCostModel`] selects between that convention
//! ([`IoCostModel::SeekDominated`], the paper's accounting and our default)
//! and the literal two-transfer count ([`IoCostModel::Strict`]).
//!
//! ## Buffering
//!
//! The entire point of the paper is what a small internal-memory buffer can
//! and cannot do. The substrate therefore makes buffering *explicit*:
//!
//! * structures must charge every word of internal state to a
//!   [`MemoryBudget`] of capacity `m`;
//! * an optional [`BufferPool`] (LRU / FIFO / Clock) can be attached to a
//!   [`Disk`] to model generic page caching; its frames are charged against
//!   the same budget by the structures that opt into it.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod backend;
mod blob;
mod block;
mod budget;
mod config;
mod disk;
mod error;
mod file_disk;
mod item;
mod mem_disk;
mod pool;
mod sim_disk;
mod stats;

pub use backend::{PersistentBackend, StorageBackend};
pub use blob::{BlobFile, BlobLog, FileBlob, BLOB_FRAME_HEADER};
pub use block::{Block, BlockId};
pub use budget::{Enforcement, MemoryBudget};
pub use config::{ExtMemConfig, PoolConfig};
pub use disk::Disk;
pub use error::{ExtMemError, Result};
pub use file_disk::FileDisk;
pub use item::{Item, Key, Value, BLOB_TAG, KEY_TOMBSTONE, MAX_BLOB_OFFSET, VALUE_TOMBSTONE};
pub use mem_disk::MemDisk;
pub use pool::{BufferPool, EvictionPolicy, PoolStats};
pub use sim_disk::{fnv1a64, FaultPlan, IoEvent, SimBlob, SimDisk, SimEnv};
pub use stats::{IoCostModel, IoSnapshot, IoStats};

/// Convenience constructor: an accounting [`Disk`] over an in-memory
/// backend with block capacity `b` items and the paper's (seek-dominated)
/// cost model.
pub fn mem_disk(b: usize) -> Disk<MemDisk> {
    Disk::new(MemDisk::new(b), b, IoCostModel::SeekDominated)
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn mem_disk_constructor_wires_block_capacity() {
        let mut d = mem_disk(8);
        let id = d.allocate().unwrap();
        let blk = d.read(id).unwrap();
        assert_eq!(blk.capacity(), 8);
        assert_eq!(d.stats().reads(), 1);
    }
}
