//! Disk blocks: the unit of transfer in the external memory model.

use crate::error::{ExtMemError, Result};
use crate::item::{Item, Key, Value};

/// Identifier of a disk block. Dense, starting from zero, never reused
/// differently by the two backends (both recycle freed ids).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

impl BlockId {
    /// The raw index.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// On-disk encoding of an optional chain pointer, biased by one so
    /// that `0` means "no block". The payoff: an **all-zero byte image is
    /// a valid empty block** (`len = 0`, `tag = 0`, no chain), which lets
    /// file backends allocate fresh regions by extending the file
    /// (zero-filled by the OS) without writing any initialization bytes.
    #[inline]
    pub(crate) fn encode_opt(id: Option<BlockId>) -> u64 {
        match id {
            Some(b) => b.0 + 1,
            None => 0,
        }
    }

    /// Inverse of [`BlockId::encode_opt`].
    #[inline]
    pub(crate) fn decode_opt(raw: u64) -> Option<BlockId> {
        raw.checked_sub(1).map(BlockId)
    }
}

impl core::fmt::Debug for BlockId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A disk block: up to `capacity` (= the model's `b`) items, plus a small
/// header — a `tag` word for structure-specific metadata (e.g. the local
/// depth of an extendible-hashing bucket) and an optional `next` pointer
/// for overflow chains.
///
/// The header is the usual page-header found in real storage engines; the
/// model's capacity `b` counts item slots only, which we document as the
/// (standard) simplification that headers live in the per-block slack.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    capacity: usize,
    tag: u64,
    next: Option<BlockId>,
    items: Vec<Item>,
}

impl Block {
    /// An empty block with room for `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Block { capacity, tag: 0, next: None, items: Vec::with_capacity(capacity) }
    }

    /// Capacity in items (the model parameter `b`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the block holds no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the block is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining item slots.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// The structure-specific header word.
    #[inline]
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Sets the structure-specific header word.
    #[inline]
    pub fn set_tag(&mut self, tag: u64) {
        self.tag = tag;
    }

    /// The overflow-chain pointer.
    #[inline]
    pub fn next(&self) -> Option<BlockId> {
        self.next
    }

    /// Sets the overflow-chain pointer.
    #[inline]
    pub fn set_next(&mut self, next: Option<BlockId>) {
        self.next = next;
    }

    /// Appends an item; fails with [`ExtMemError::BlockOverflow`] when full.
    #[inline]
    pub fn push(&mut self, item: Item) -> Result<()> {
        if self.is_full() {
            return Err(ExtMemError::BlockOverflow { capacity: self.capacity });
        }
        self.items.push(item);
        Ok(())
    }

    /// Looks up the value stored under `key` (first match).
    #[inline]
    pub fn find(&self, key: Key) -> Option<Value> {
        self.items.iter().find(|it| it.key == key).map(|it| it.value)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.items.iter().any(|it| it.key == key)
    }

    /// Replaces the value under `key`; returns the previous value, or
    /// `None` when the key is absent (in which case nothing changes).
    pub fn replace(&mut self, key: Key, value: Value) -> Option<Value> {
        for it in &mut self.items {
            if it.key == key {
                return Some(core::mem::replace(&mut it.value, value));
            }
        }
        None
    }

    /// Removes the first item with `key`, preserving the order of the rest;
    /// returns its value when present.
    pub fn remove(&mut self, key: Key) -> Option<Value> {
        let pos = self.items.iter().position(|it| it.key == key)?;
        Some(self.items.remove(pos).value)
    }

    /// Removes the first item with `key` by swapping with the last item
    /// (O(1), does not preserve order).
    pub fn swap_remove(&mut self, key: Key) -> Option<Value> {
        let pos = self.items.iter().position(|it| it.key == key)?;
        Some(self.items.swap_remove(pos).value)
    }

    /// Read access to the stored items.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Mutable access to the stored items (length may only shrink through
    /// [`Block::retain`]-style edits; pushing past capacity is prevented by
    /// the public API).
    #[inline]
    pub fn items_mut(&mut self) -> &mut [Item] {
        &mut self.items
    }

    /// Keeps only the items satisfying `pred`.
    pub fn retain(&mut self, pred: impl FnMut(&Item) -> bool) {
        self.items.retain(pred);
    }

    /// Removes and returns all items, leaving the block empty (header kept).
    pub fn drain_items(&mut self) -> Vec<Item> {
        core::mem::take(&mut self.items)
    }

    /// Clears items and header.
    pub fn reset(&mut self) {
        self.items.clear();
        self.tag = 0;
        self.next = None;
    }

    /// On-disk size of a block with this capacity, in bytes:
    /// `len (8) + tag (8) + next (8) + capacity × 16`.
    pub fn encoded_len(capacity: usize) -> usize {
        24 + capacity * 16
    }

    /// Serializes into `buf` (must be exactly [`Block::encoded_len`] bytes).
    pub fn encode_into(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), Self::encoded_len(self.capacity));
        buf[0..8].copy_from_slice(&(self.items.len() as u64).to_le_bytes());
        buf[8..16].copy_from_slice(&self.tag.to_le_bytes());
        buf[16..24].copy_from_slice(&BlockId::encode_opt(self.next).to_le_bytes());
        let mut off = 24;
        for it in &self.items {
            buf[off..off + 8].copy_from_slice(&it.key.to_le_bytes());
            buf[off + 8..off + 16].copy_from_slice(&it.value.to_le_bytes());
            off += 16;
        }
        // Zero the unused tail so the image is deterministic.
        buf[off..].fill(0);
    }

    /// Deserializes a block of the given `capacity` from `buf`.
    pub fn decode_from(capacity: usize, buf: &[u8]) -> Result<Self> {
        if buf.len() != Self::encoded_len(capacity) {
            return Err(ExtMemError::Corrupt(format!(
                "expected {} bytes, got {}",
                Self::encoded_len(capacity),
                buf.len()
            )));
        }
        let word = |i: usize| -> u64 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&buf[i..i + 8]);
            u64::from_le_bytes(w)
        };
        let len = word(0) as usize;
        if len > capacity {
            return Err(ExtMemError::Corrupt(format!(
                "stored length {len} exceeds capacity {capacity}"
            )));
        }
        let tag = word(8);
        let next = BlockId::decode_opt(word(16));
        let mut items = Vec::with_capacity(capacity);
        for slot in 0..len {
            let off = 24 + slot * 16;
            items.push(Item::new(word(off), word(off + 8)));
        }
        Ok(Block { capacity, tag, next, items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(cap: usize, n: usize) -> Block {
        let mut b = Block::new(cap);
        for i in 0..n {
            b.push(Item::new(i as u64, i as u64 * 10)).unwrap();
        }
        b
    }

    #[test]
    fn push_until_overflow() {
        let mut b = Block::new(3);
        for i in 0..3 {
            b.push(Item::key_only(i)).unwrap();
        }
        assert!(b.is_full());
        assert!(matches!(
            b.push(Item::key_only(9)),
            Err(ExtMemError::BlockOverflow { capacity: 3 })
        ));
    }

    #[test]
    fn find_replace_remove() {
        let mut b = filled(8, 5);
        assert_eq!(b.find(3), Some(30));
        assert_eq!(b.find(7), None);
        assert_eq!(b.replace(3, 99), Some(30));
        assert_eq!(b.find(3), Some(99));
        assert_eq!(b.replace(77, 1), None);
        assert_eq!(b.remove(3), Some(99));
        assert_eq!(b.find(3), None);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn swap_remove_is_order_agnostic_but_complete() {
        let mut b = filled(8, 4);
        assert_eq!(b.swap_remove(0), Some(0));
        assert_eq!(b.len(), 3);
        assert!(!b.contains(0));
        for k in 1..4u64 {
            assert!(b.contains(k));
        }
    }

    #[test]
    fn header_round_trip() {
        let mut b = Block::new(4);
        b.set_tag(0xDEAD);
        b.set_next(Some(BlockId(7)));
        assert_eq!(b.tag(), 0xDEAD);
        assert_eq!(b.next(), Some(BlockId(7)));
        b.reset();
        assert_eq!(b.tag(), 0);
        assert_eq!(b.next(), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut b = filled(6, 4);
        b.set_tag(42);
        b.set_next(Some(BlockId(123)));
        let mut buf = vec![0u8; Block::encoded_len(6)];
        b.encode_into(&mut buf);
        let d = Block::decode_from(6, &buf).unwrap();
        assert_eq!(d, b);
    }

    #[test]
    fn encode_decode_empty_and_full() {
        for n in [0, 6] {
            let b = filled(6, n);
            let mut buf = vec![0u8; Block::encoded_len(6)];
            b.encode_into(&mut buf);
            assert_eq!(Block::decode_from(6, &buf).unwrap(), b);
        }
    }

    #[test]
    fn decode_rejects_bad_length_and_corrupt_count() {
        assert!(Block::decode_from(6, &[0u8; 10]).is_err());
        let mut buf = vec![0u8; Block::encoded_len(2)];
        buf[0..8].copy_from_slice(&99u64.to_le_bytes()); // len 99 > cap 2
        assert!(Block::decode_from(2, &buf).is_err());
    }

    #[test]
    fn drain_items_empties_but_keeps_header() {
        let mut b = filled(4, 3);
        b.set_tag(5);
        let items = b.drain_items();
        assert_eq!(items.len(), 3);
        assert!(b.is_empty());
        assert_eq!(b.tag(), 5);
    }

    #[test]
    fn retain_filters() {
        let mut b = filled(8, 6);
        b.retain(|it| it.key % 2 == 0);
        assert_eq!(b.len(), 3);
        assert!(b.contains(0) && b.contains(2) && b.contains(4));
    }

    #[test]
    fn optional_block_id_encoding() {
        assert_eq!(BlockId::encode_opt(None), 0);
        assert_eq!(BlockId::decode_opt(0), None);
        assert_eq!(BlockId::decode_opt(4), Some(BlockId(3)));
        assert_eq!(BlockId::encode_opt(Some(BlockId(3))), 4);
    }

    #[test]
    fn all_zero_image_decodes_as_empty_block() {
        // File backends rely on this: a freshly extended (zero-filled)
        // file region must read back as valid empty blocks.
        let buf = vec![0u8; Block::encoded_len(5)];
        let b = Block::decode_from(5, &buf).unwrap();
        assert!(b.is_empty());
        assert_eq!(b.tag(), 0);
        assert_eq!(b.next(), None);
    }

    #[test]
    fn free_slots_tracks_len() {
        let mut b = Block::new(4);
        assert_eq!(b.free_slots(), 4);
        b.push(Item::key_only(1)).unwrap();
        assert_eq!(b.free_slots(), 3);
    }
}
