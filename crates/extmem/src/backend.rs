//! The storage-backend abstraction behind [`crate::Disk`].

use crate::block::{Block, BlockId};
use crate::error::Result;

/// Raw block storage: an unbounded array of fixed-capacity blocks.
///
/// Backends are dumb — they neither count I/Os nor cache; both concerns
/// live in [`crate::Disk`] so that accounting is uniform across backends.
pub trait StorageBackend {
    /// Block capacity in items (the model's `b`); constant per backend.
    fn block_capacity(&self) -> usize;

    /// Reads block `id` into an owned [`Block`].
    fn read(&mut self, id: BlockId) -> Result<Block>;

    /// Overwrites block `id`.
    fn write(&mut self, id: BlockId, block: &Block) -> Result<()>;

    /// Allocates a fresh (empty) block and returns its id. Freed ids may
    /// be recycled.
    fn allocate(&mut self) -> Result<BlockId>;

    /// Allocates `n` blocks with **consecutive** ids and returns the first.
    ///
    /// Contiguity is what lets a hash table compute a bucket's block
    /// address from `(base, bucket)` alone — an address function that fits
    /// in O(1) words of internal memory, as the paper's model requires —
    /// instead of keeping a per-bucket pointer table. Never recycles ids.
    fn allocate_contiguous(&mut self, n: usize) -> Result<BlockId>;

    /// Returns block `id` to the allocator. Reading a freed id is an error
    /// until it is re-allocated.
    fn free(&mut self, id: BlockId) -> Result<()>;

    /// Number of live (allocated) blocks.
    fn live_blocks(&self) -> u64;

    /// Flushes any OS-level buffering (no-op for in-memory backends).
    fn sync(&mut self) -> Result<()>;
}
