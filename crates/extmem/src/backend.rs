//! The storage-backend abstraction behind [`crate::Disk`].

use std::collections::BTreeMap;

use crate::block::{Block, BlockId};
use crate::error::Result;

/// Raw block storage: an unbounded array of fixed-capacity blocks.
///
/// Backends are dumb — they neither count I/Os nor cache; both concerns
/// live in [`crate::Disk`] so that accounting is uniform across backends.
pub trait StorageBackend {
    /// Block capacity in items (the model's `b`); constant per backend.
    fn block_capacity(&self) -> usize;

    /// Reads block `id` into an owned [`Block`].
    fn read(&mut self, id: BlockId) -> Result<Block>;

    /// Overwrites block `id`.
    fn write(&mut self, id: BlockId, block: &Block) -> Result<()>;

    /// Allocates a fresh (empty) block and returns its id. Freed ids may
    /// be recycled.
    fn allocate(&mut self) -> Result<BlockId>;

    /// Allocates `n` blocks with **consecutive** ids and returns the first.
    ///
    /// Contiguity is what lets a hash table compute a bucket's block
    /// address from `(base, bucket)` alone — an address function that fits
    /// in O(1) words of internal memory, as the paper's model requires —
    /// instead of keeping a per-bucket pointer table. A contiguous run of
    /// freed ids may be recycled (region frees and crash GC return whole
    /// ranges, so runs are the common case); both built-in backends use
    /// the identical lowest-first-fit policy ([`FreeRuns`]) so the
    /// same workload produces the same ids on every backend.
    fn allocate_contiguous(&mut self, n: usize) -> Result<BlockId>;

    /// Returns block `id` to the allocator. Reading a freed id is an error
    /// until it is re-allocated.
    fn free(&mut self, id: BlockId) -> Result<()>;

    /// Number of live (allocated) blocks.
    fn live_blocks(&self) -> u64;

    /// Flushes any OS-level buffering (no-op for in-memory backends).
    fn sync(&mut self) -> Result<()>;
}

/// Free block ids as a coalesced interval set (`start → end`,
/// end-exclusive, maximal runs), maintained incrementally by the
/// allocator alongside its LIFO recycle stack.
///
/// This is the shared policy behind every backend's
/// [`StorageBackend::allocate_contiguous`] — the **lowest** maximal run
/// of at least `n` consecutive free ids wins — so block ids stay
/// backend-deterministic. Keeping the runs coalesced as frees arrive
/// makes the run search `O(runs)` with no allocation (after crash GC or
/// a region free the returned ranges coalesce into a handful of runs),
/// where re-deriving it from the flat free list cost a clone plus an
/// `O(F log F)` sort on every region rebuild — even the ones that found
/// nothing and fell through to file growth.
#[derive(Debug, Default)]
pub(crate) struct FreeRuns {
    runs: BTreeMap<u64, u64>,
}

impl FreeRuns {
    /// Rebuilds from a flat id list (reopen path).
    pub(crate) fn rebuild(&mut self, ids: &[u64]) {
        self.runs.clear();
        for &id in ids {
            self.insert(id);
        }
    }

    /// Marks `id` free, coalescing with adjacent runs. `id` must not
    /// already be free (callers guard with their liveness checks).
    pub(crate) fn insert(&mut self, id: u64) {
        // Absorb a run starting right after id, then either extend a run
        // ending right at id or open a new one.
        let end = self.runs.remove(&(id + 1)).unwrap_or(id + 1);
        if let Some((_, e)) = self.runs.range_mut(..=id).next_back() {
            debug_assert!(*e <= id, "id {id} already free");
            if *e == id {
                *e = end;
                return;
            }
        }
        self.runs.insert(id, end);
    }

    /// Un-frees a single `id` (the LIFO `allocate` path), splitting the
    /// run containing it.
    pub(crate) fn remove(&mut self, id: u64) {
        let (&s, &e) = self.runs.range(..=id).next_back().expect("id must be free");
        debug_assert!(id < e, "id {id} not free");
        self.runs.remove(&s);
        if s < id {
            self.runs.insert(s, id);
        }
        if id + 1 < e {
            self.runs.insert(id + 1, e);
        }
    }

    /// Un-frees `[base, end)`, which must lie within one run (as returned
    /// by [`FreeRuns::first_run_of`]).
    pub(crate) fn remove_range(&mut self, base: u64, end: u64) {
        let (&s, &e) = self.runs.range(..=base).next_back().expect("run must be free");
        debug_assert!(base >= s && end <= e, "[{base},{end}) not within a free run");
        self.runs.remove(&s);
        if s < base {
            self.runs.insert(s, base);
        }
        if end < e {
            self.runs.insert(end, e);
        }
    }

    /// The start of the lowest maximal run of at least `n` consecutive
    /// free ids, if any.
    pub(crate) fn first_run_of(&self, n: usize) -> Option<u64> {
        if n == 0 {
            return None;
        }
        let n = n as u64;
        self.runs.iter().find(|&(&s, &e)| e - s >= n).map(|(&s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::FreeRuns;

    /// The policy predecessor: sort the flat list, return the lowest
    /// maximal run of ≥ n. `FreeRuns` must agree with it exactly.
    fn reference_run(free: &[u64], n: usize) -> Option<u64> {
        if n == 0 || free.len() < n {
            return None;
        }
        let mut sorted = free.to_vec();
        sorted.sort_unstable();
        let mut run_start = 0usize;
        for i in 1..=sorted.len() {
            if i == sorted.len() || sorted[i] != sorted[i - 1] + 1 {
                if i - run_start >= n {
                    return Some(sorted[run_start]);
                }
                run_start = i;
            }
        }
        None
    }

    #[test]
    fn matches_the_sort_based_reference_policy() {
        // Out-of-order frees with gaps: runs [2,5), [7,8), [10,14).
        let ids = [12, 2, 10, 7, 4, 13, 3, 11];
        let mut runs = FreeRuns::default();
        runs.rebuild(&ids);
        for n in 0..6 {
            assert_eq!(runs.first_run_of(n), reference_run(&ids, n), "n = {n}");
        }
    }

    #[test]
    fn insert_coalesces_and_remove_splits() {
        let mut runs = FreeRuns::default();
        runs.insert(5);
        runs.insert(7);
        assert_eq!(runs.first_run_of(2), None);
        runs.insert(6); // bridges [5,6) and [7,8) into [5,8)
        assert_eq!(runs.first_run_of(3), Some(5));
        runs.remove(6); // splits back
        assert_eq!(runs.first_run_of(2), None);
        assert_eq!(runs.first_run_of(1), Some(5));
        runs.insert(6);
        runs.remove_range(5, 7); // leaves [7,8)
        assert_eq!(runs.first_run_of(1), Some(7));
        runs.remove(7);
        assert_eq!(runs.first_run_of(1), None);
    }
}
