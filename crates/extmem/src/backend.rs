//! The storage-backend abstraction behind [`crate::Disk`].

use std::collections::{BTreeMap, HashSet};

use crate::block::{Block, BlockId};
use crate::error::Result;

/// Raw block storage: an unbounded array of fixed-capacity blocks.
///
/// Backends are dumb — they neither count I/Os nor cache; both concerns
/// live in [`crate::Disk`] so that accounting is uniform across backends.
pub trait StorageBackend {
    /// Block capacity in items (the model's `b`); constant per backend.
    fn block_capacity(&self) -> usize;

    /// Reads block `id` into an owned [`Block`].
    fn read(&mut self, id: BlockId) -> Result<Block>;

    /// Overwrites block `id`.
    fn write(&mut self, id: BlockId, block: &Block) -> Result<()>;

    /// Allocates a fresh (empty) block and returns its id. Freed ids may
    /// be recycled.
    fn allocate(&mut self) -> Result<BlockId>;

    /// Allocates `n` blocks with **consecutive** ids and returns the first.
    ///
    /// Contiguity is what lets a hash table compute a bucket's block
    /// address from `(base, bucket)` alone — an address function that fits
    /// in O(1) words of internal memory, as the paper's model requires —
    /// instead of keeping a per-bucket pointer table. A contiguous run of
    /// freed ids may be recycled (region frees and crash GC return whole
    /// ranges, so runs are the common case); both built-in backends use
    /// the identical lowest-first-fit policy (the internal `FreeRuns`
    /// interval set) so the same workload produces the same ids on
    /// every backend.
    fn allocate_contiguous(&mut self, n: usize) -> Result<BlockId>;

    /// Returns block `id` to the allocator. Reading a freed id is an error
    /// until it is re-allocated.
    fn free(&mut self, id: BlockId) -> Result<()>;

    /// Number of live (allocated) blocks.
    fn live_blocks(&self) -> u64;

    /// Flushes any OS-level buffering (no-op for in-memory backends).
    fn sync(&mut self) -> Result<()>;
}

/// The persistence surface a durable store needs from a backend beyond
/// raw block I/O: allocator introspection plus the deferred-recycling
/// protocol that keeps sync-point-referenced blocks physically intact
/// between manifest commits.
///
/// [`crate::FileDisk`] implements it over a real file and
/// [`crate::SimDisk`] over the deterministic crash-simulation device, so
/// a persistence layer written against this trait runs — and is torture-
/// tested — without caring where the blocks live.
pub trait PersistentBackend: StorageBackend {
    /// High-water mark: total slots ever allocated (free ones included).
    fn slots(&self) -> u64;

    /// Every dead slot — the recyclable stack plus any quarantined frees
    /// — in recycle order. Serialize this to persist the allocator.
    fn free_list(&self) -> Vec<u64>;

    /// Number of dead slots (recyclable plus quarantined) without
    /// cloning the list: `slots() == live_blocks() + free_count() as u64`
    /// always holds.
    fn free_count(&self) -> usize;

    /// Quarantines future frees (on) or recycles them immediately (off,
    /// the default). With deferral on, a freed block's contents stay
    /// intact — and its slot is never re-allocated — until
    /// [`PersistentBackend::commit_frees`].
    fn set_defer_recycling(&mut self, defer: bool);

    /// Releases every quarantined slot for recycling. Call after the
    /// caller's own metadata (which lists those slots as free) is durable.
    fn commit_frees(&mut self);

    /// Restores a persisted free list after a reopen. Ids must be
    /// in-range and distinct; the matching slots become dead until
    /// re-allocated.
    fn restore_free_list(&mut self, free: Vec<u64>) -> Result<()>;
}

/// Free block ids as a coalesced interval set (`start → end`,
/// end-exclusive, maximal runs), maintained incrementally by the
/// allocator alongside its LIFO recycle stack.
///
/// This is the shared policy behind every backend's
/// [`StorageBackend::allocate_contiguous`] — the **lowest** maximal run
/// of at least `n` consecutive free ids wins — so block ids stay
/// backend-deterministic. Keeping the runs coalesced as frees arrive
/// makes the run search `O(runs)` with no allocation (after crash GC or
/// a region free the returned ranges coalesce into a handful of runs),
/// where re-deriving it from the flat free list cost a clone plus an
/// `O(F log F)` sort on every region rebuild — even the ones that found
/// nothing and fell through to file growth.
#[derive(Debug, Default)]
pub(crate) struct FreeRuns {
    runs: BTreeMap<u64, u64>,
}

impl FreeRuns {
    /// Rebuilds from a flat id list (reopen path).
    pub(crate) fn rebuild(&mut self, ids: &[u64]) {
        self.runs.clear();
        for &id in ids {
            self.insert(id);
        }
    }

    /// Marks `id` free, coalescing with adjacent runs. `id` must not
    /// already be free (callers guard with their liveness checks).
    pub(crate) fn insert(&mut self, id: u64) {
        // Absorb a run starting right after id, then either extend a run
        // ending right at id or open a new one.
        let end = self.runs.remove(&(id + 1)).unwrap_or(id + 1);
        if let Some((_, e)) = self.runs.range_mut(..=id).next_back() {
            debug_assert!(*e <= id, "id {id} already free");
            if *e == id {
                *e = end;
                return;
            }
        }
        self.runs.insert(id, end);
    }

    /// Un-frees a single `id` (the LIFO `allocate` path), splitting the
    /// run containing it.
    pub(crate) fn remove(&mut self, id: u64) {
        let (&s, &e) = self.runs.range(..=id).next_back().expect("id must be free");
        debug_assert!(id < e, "id {id} not free");
        self.runs.remove(&s);
        if s < id {
            self.runs.insert(s, id);
        }
        if id + 1 < e {
            self.runs.insert(id + 1, e);
        }
    }

    /// Un-frees `[base, end)`, which must lie within one run (as returned
    /// by [`FreeRuns::first_run_of`]).
    pub(crate) fn remove_range(&mut self, base: u64, end: u64) {
        let (&s, &e) = self.runs.range(..=base).next_back().expect("run must be free");
        debug_assert!(base >= s && end <= e, "[{base},{end}) not within a free run");
        self.runs.remove(&s);
        if s < base {
            self.runs.insert(s, base);
        }
        if end < e {
            self.runs.insert(end, e);
        }
    }

    /// The start of the lowest maximal run of at least `n` consecutive
    /// free ids, if any.
    pub(crate) fn first_run_of(&self, n: usize) -> Option<u64> {
        if n == 0 {
            return None;
        }
        let n = n as u64;
        self.runs.iter().find(|&(&s, &e)| e - s >= n).map(|(&s, _)| s)
    }
}

/// The allocator state machine shared by [`crate::FileDisk`] and
/// [`crate::SimDisk`]: LIFO single-slot recycling, lowest-first-fit
/// contiguous runs ([`FreeRuns`]), O(1) liveness, and the
/// deferred-recycling quarantine of [`PersistentBackend`]. One
/// implementation — not one per backend — is what keeps block ids
/// backend-deterministic by construction: the torture harness certifies
/// crash-safety of exactly the allocator the real store runs.
///
/// Device I/O (header resets, zero fills, file growth) happens in the
/// backend *between* a `peek_*` and its `commit_*`: the peek chooses
/// without mutating, so a failed device op leaves the allocator state
/// untouched (the slot stays safely on the free list).
#[derive(Debug, Default)]
pub(crate) struct SlotAllocator {
    /// High-water mark: total slots ever allocated (free ones included).
    slots: u64,
    /// Recycle stack: freed ids, reused LIFO.
    free: Vec<u64>,
    /// `free` as coalesced intervals, for O(runs) contiguous-run search
    /// (quarantined ids join only at [`SlotAllocator::commit_frees`]).
    runs: FreeRuns,
    /// Freed ids quarantined from recycling until committed.
    pending_free: Vec<u64>,
    /// All dead ids (`free` ∪ `pending_free`), for O(1) liveness checks.
    free_set: HashSet<u64>,
    /// When set, freed slots are quarantined instead of recycled.
    defer_recycling: bool,
    live: u64,
}

impl SlotAllocator {
    /// An allocator over `[0, slots)` with every slot live — the reopen
    /// shape (restore the persisted free list afterwards) and, with
    /// `slots == 0`, the fresh-device shape.
    pub(crate) fn with_all_live(slots: u64) -> Self {
        SlotAllocator { slots, live: slots, ..Default::default() }
    }

    /// High-water mark.
    pub(crate) fn slots(&self) -> u64 {
        self.slots
    }

    /// Live (allocated) slots.
    pub(crate) fn live(&self) -> u64 {
        self.live
    }

    /// Whether `id` is out of range or on the dead list.
    pub(crate) fn is_dead(&self, id: u64) -> bool {
        id >= self.slots || self.free_set.contains(&id)
    }

    /// Every dead slot (recyclable plus quarantined) in recycle order.
    pub(crate) fn free_list(&self) -> Vec<u64> {
        let mut out = self.free.clone();
        out.extend_from_slice(&self.pending_free);
        out
    }

    /// Number of dead slots without cloning the list.
    pub(crate) fn free_count(&self) -> usize {
        self.free.len() + self.pending_free.len()
    }

    /// See [`PersistentBackend::set_defer_recycling`].
    pub(crate) fn set_defer_recycling(&mut self, defer: bool) {
        self.defer_recycling = defer;
        if !defer {
            self.commit_frees();
        }
    }

    /// See [`PersistentBackend::commit_frees`].
    pub(crate) fn commit_frees(&mut self) {
        for &id in &self.pending_free {
            self.runs.insert(id);
        }
        self.free.append(&mut self.pending_free);
    }

    /// See [`PersistentBackend::restore_free_list`].
    pub(crate) fn restore_free_list(&mut self, free: Vec<u64>) -> Result<()> {
        let mut set = HashSet::with_capacity(free.len());
        for &id in &free {
            if id >= self.slots || !set.insert(id) {
                return Err(crate::error::ExtMemError::Corrupt(format!("bad free-list id {id}")));
            }
        }
        self.live = self.slots - free.len() as u64;
        self.runs.rebuild(&free);
        self.free = free;
        self.pending_free.clear();
        self.free_set = set;
        Ok(())
    }

    /// The slot the next single-slot recycle would take, without taking
    /// it (the backend resets the slot's device image first).
    pub(crate) fn peek_recycle(&self) -> Option<u64> {
        self.free.last().copied()
    }

    /// Takes `id` — which must be the current [`SlotAllocator::peek_recycle`]
    /// answer — off the free list.
    pub(crate) fn commit_recycle(&mut self, id: u64) {
        let popped = self.free.pop();
        debug_assert_eq!(popped, Some(id), "commit must follow peek");
        self.runs.remove(id);
        self.free_set.remove(&id);
        self.live += 1;
    }

    /// The lowest committed free run of at least `n` slots, without
    /// taking it.
    pub(crate) fn peek_run(&self, n: usize) -> Option<u64> {
        self.runs.first_run_of(n)
    }

    /// Takes the run `[base, base + n)` — as returned by
    /// [`SlotAllocator::peek_run`] — off the free list.
    pub(crate) fn commit_run(&mut self, base: u64, n: usize) {
        let end = base + n as u64;
        self.free.retain(|&id| !(base..end).contains(&id));
        self.runs.remove_range(base, end);
        for id in base..end {
            self.free_set.remove(&id);
        }
        self.live += n as u64;
    }

    /// Extends the high-water mark by `n` fresh live slots (the backend
    /// has already grown the device) and returns the first new id.
    pub(crate) fn commit_grow(&mut self, n: u64) -> u64 {
        let base = self.slots;
        self.slots += n;
        self.live += n;
        base
    }

    /// Returns live `id` to the allocator (quarantined under deferral).
    pub(crate) fn release(&mut self, id: u64) {
        if self.defer_recycling {
            self.pending_free.push(id);
        } else {
            self.free.push(id);
            self.runs.insert(id);
        }
        self.free_set.insert(id);
        self.live -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::FreeRuns;

    /// The policy predecessor: sort the flat list, return the lowest
    /// maximal run of ≥ n. `FreeRuns` must agree with it exactly.
    fn reference_run(free: &[u64], n: usize) -> Option<u64> {
        if n == 0 || free.len() < n {
            return None;
        }
        let mut sorted = free.to_vec();
        sorted.sort_unstable();
        let mut run_start = 0usize;
        for i in 1..=sorted.len() {
            if i == sorted.len() || sorted[i] != sorted[i - 1] + 1 {
                if i - run_start >= n {
                    return Some(sorted[run_start]);
                }
                run_start = i;
            }
        }
        None
    }

    #[test]
    fn matches_the_sort_based_reference_policy() {
        // Out-of-order frees with gaps: runs [2,5), [7,8), [10,14).
        let ids = [12, 2, 10, 7, 4, 13, 3, 11];
        let mut runs = FreeRuns::default();
        runs.rebuild(&ids);
        for n in 0..6 {
            assert_eq!(runs.first_run_of(n), reference_run(&ids, n), "n = {n}");
        }
    }

    /// The reference model: a naive `BTreeSet` of free ids. Every query
    /// `FreeRuns` answers must agree with a linear scan of the set.
    fn model_first_run_of(model: &std::collections::BTreeSet<u64>, n: usize) -> Option<u64> {
        if n == 0 {
            return None;
        }
        let mut run_start: Option<u64> = None;
        let mut prev: Option<u64> = None;
        let mut len = 0usize;
        for &id in model {
            if prev == Some(id.wrapping_sub(1)) {
                len += 1;
            } else {
                run_start = Some(id);
                len = 1;
            }
            if len >= n {
                return run_start;
            }
            prev = Some(id);
        }
        None
    }

    mod properties {
        use std::collections::BTreeSet;

        use proptest::prelude::*;

        use super::super::FreeRuns;
        use super::model_first_run_of;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(192))]

            /// Interleaved insert / remove / remove-range against the
            /// naive set model: after every mutation the coalesced
            /// interval set answers `first_run_of` exactly like a linear
            /// scan of the flat free set, for every run length that can
            /// occur. `FreeRuns` is load-bearing for crash GC (it decides
            /// which orphaned ranges region rebuilds recycle), so the
            /// agreement is checked exhaustively rather than on a few
            /// hand-picked shapes.
            #[test]
            fn free_runs_matches_a_btreeset_model(
                ops in proptest::collection::vec((0u8..4, 0u64..48, 1u64..6), 1..250),
            ) {
                let mut runs = FreeRuns::default();
                let mut model: BTreeSet<u64> = BTreeSet::new();
                for (sel, id, n) in ops {
                    match sel {
                        // Free an id (skip ids already free — the real
                        // allocators guard with their liveness checks).
                        0 | 1 => {
                            if model.insert(id) {
                                runs.insert(id);
                            }
                        }
                        // Re-allocate a single free id (LIFO allocate).
                        2 => {
                            if model.remove(&id) {
                                runs.remove(id);
                            }
                        }
                        // Contiguous allocation: take the lowest run of
                        // at least n, exactly as the backends do.
                        _ => {
                            let got = runs.first_run_of(n as usize);
                            prop_assert_eq!(
                                got,
                                model_first_run_of(&model, n as usize),
                                "first_run_of({}) diverged from the model", n
                            );
                            if let Some(base) = got {
                                runs.remove_range(base, base + n);
                                for i in base..base + n {
                                    model.remove(&i);
                                }
                            }
                        }
                    }
                    for probe in 1..8usize {
                        prop_assert_eq!(
                            runs.first_run_of(probe),
                            model_first_run_of(&model, probe),
                            "probe length {} diverged after an op", probe
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn insert_coalesces_and_remove_splits() {
        let mut runs = FreeRuns::default();
        runs.insert(5);
        runs.insert(7);
        assert_eq!(runs.first_run_of(2), None);
        runs.insert(6); // bridges [5,6) and [7,8) into [5,8)
        assert_eq!(runs.first_run_of(3), Some(5));
        runs.remove(6); // splits back
        assert_eq!(runs.first_run_of(2), None);
        assert_eq!(runs.first_run_of(1), Some(5));
        runs.insert(6);
        runs.remove_range(5, 7); // leaves [7,8)
        assert_eq!(runs.first_run_of(1), Some(7));
        runs.remove(7);
        assert_eq!(runs.first_run_of(1), None);
    }
}
