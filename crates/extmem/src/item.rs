//! Items: the atomic records of the external memory model.
//!
//! The paper treats items as indivisible one-word records and identifies an
//! item `x` with its hash value `h(x)` (§2: "we will not distinguish between
//! an item x and its hash value h(x)"). We keep a `key` word in that role
//! and add an optional `value` word of associated data so the library is
//! usable as a real dictionary; capacities (`b`, `m`) are counted in
//! **items**, exactly matching the paper's parameters.

/// A key: the one-word identity of an item (its hash value in the paper).
pub type Key = u64;

/// One word of associated data carried alongside a key.
pub type Value = u64;

/// Reserved key used by structures that need a slot-level sentinel
/// (e.g. tombstones in blocked linear probing). User keys must be strictly
/// smaller than this value; constructors enforce it on insert.
pub const KEY_TOMBSTONE: Key = u64::MAX;

/// Reserved value used by the buffered (LSM-style) tables as a **per-key
/// deletion marker**: an item `(k, VALUE_TOMBSTONE)` records "key `k` is
/// deleted" and shadows older copies of `k` in deeper levels until a
/// merge into the deepest level purges it. Structures that support
/// log-method deletion reject user values equal to this sentinel on
/// insert; the flat tables (which delete physically) accept any value.
pub const VALUE_TOMBSTONE: Value = u64::MAX;

/// An indivisible record: `(key, value)`.
///
/// The indivisibility assumption of the paper's lower bound — items are
/// moved or copied between memory and disk only in their entirety — is
/// embodied by the fact that blocks store whole `Item`s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Item {
    /// The key (hash value) of the item.
    pub key: Key,
    /// Associated data.
    pub value: Value,
}

impl Item {
    /// Creates an item from a key/value pair.
    #[inline]
    pub const fn new(key: Key, value: Value) -> Self {
        Item { key, value }
    }

    /// An item carrying a key only (`value = 0`), matching the paper's
    /// one-word items.
    #[inline]
    pub const fn key_only(key: Key) -> Self {
        Item { key, value: 0 }
    }

    /// Whether this slot holds the tombstone sentinel.
    #[inline]
    pub const fn is_tombstone(&self) -> bool {
        self.key == KEY_TOMBSTONE
    }

    /// The tombstone sentinel item.
    #[inline]
    pub const fn tombstone() -> Self {
        Item { key: KEY_TOMBSTONE, value: 0 }
    }

    /// A per-key deletion marker for `key` (see [`VALUE_TOMBSTONE`]): it
    /// hashes like `key`, so it lands in `key`'s bucket and shadows
    /// deeper copies during shallow-first lookup and level merges.
    #[inline]
    pub const fn delete_marker(key: Key) -> Self {
        Item { key, value: VALUE_TOMBSTONE }
    }

    /// Whether this item is a per-key deletion marker.
    #[inline]
    pub const fn is_delete_marker(&self) -> bool {
        self.value == VALUE_TOMBSTONE
    }
}

impl core::fmt::Debug for Item {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_tombstone() {
            write!(f, "Item(‡)")
        } else {
            write!(f, "Item({}→{})", self.key, self.value)
        }
    }
}

impl From<(Key, Value)> for Item {
    #[inline]
    fn from((key, value): (Key, Value)) -> Self {
        Item { key, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_only_zeroes_value() {
        let it = Item::key_only(42);
        assert_eq!(it.key, 42);
        assert_eq!(it.value, 0);
    }

    #[test]
    fn tombstone_is_detected() {
        assert!(Item::tombstone().is_tombstone());
        assert!(!Item::new(0, 0).is_tombstone());
        assert!(Item::new(KEY_TOMBSTONE, 7).is_tombstone());
    }

    #[test]
    fn delete_marker_keeps_the_key() {
        let d = Item::delete_marker(42);
        assert_eq!(d.key, 42);
        assert!(d.is_delete_marker());
        assert!(!d.is_tombstone(), "a delete marker is not the slot sentinel");
        assert!(!Item::new(42, 0).is_delete_marker());
    }

    #[test]
    fn tuple_conversion() {
        let it: Item = (3, 9).into();
        assert_eq!(it, Item::new(3, 9));
    }

    #[test]
    fn debug_format_marks_tombstones() {
        assert_eq!(format!("{:?}", Item::new(1, 2)), "Item(1→2)");
        assert_eq!(format!("{:?}", Item::tombstone()), "Item(‡)");
    }

    #[test]
    fn ordering_is_by_key_then_value() {
        assert!(Item::new(1, 9) < Item::new(2, 0));
        assert!(Item::new(1, 1) < Item::new(1, 2));
    }
}
