//! Items: the atomic records of the external memory model.
//!
//! The paper treats items as indivisible one-word records and identifies an
//! item `x` with its hash value `h(x)` (§2: "we will not distinguish between
//! an item x and its hash value h(x)"). We keep a `key` word in that role
//! and add an optional `value` word of associated data so the library is
//! usable as a real dictionary; capacities (`b`, `m`) are counted in
//! **items**, exactly matching the paper's parameters.

/// A key: the one-word identity of an item (its hash value in the paper).
pub type Key = u64;

/// One word of associated data carried alongside a key.
pub type Value = u64;

/// Reserved key used by structures that need a slot-level sentinel
/// (e.g. tombstones in blocked linear probing). User keys must be strictly
/// smaller than this value; constructors enforce it on insert.
pub const KEY_TOMBSTONE: Key = u64::MAX;

/// Reserved value used by the buffered (LSM-style) tables as a **per-key
/// deletion marker**: an item `(k, VALUE_TOMBSTONE)` records "key `k` is
/// deleted" and shadows older copies of `k` in deeper levels until a
/// merge into the deepest level purges it. Structures that support
/// log-method deletion reject user values equal to this sentinel on
/// insert; the flat tables (which delete physically) accept any value.
///
/// ## The sentinel domain, in one place
///
/// This is the single normative statement of which `u64` values are
/// reserved and on which path — every rejection in the stack traces
/// back here:
///
/// * **Key `u64::MAX`** ([`KEY_TOMBSTONE`]) is reserved on **every**
///   path: it doubles as the slot-level sentinel of the flat probing
///   tables, so no store — raw or payload — accepts it.
/// * **Value `u64::MAX`** ([`VALUE_TOMBSTONE`]) is reserved only on the
///   **legacy raw-u64 path** (`insert`/`lookup` on a store opened
///   without payload mode). Lifting it there would need a manifest
///   format change (v2 manifests promise "value `u64::MAX` = deletion
///   marker" to every reader), so the rejection stays, documented here.
/// * The **byte-payload path** has no in-band sentinel at all: a
///   payload store's index word is `BLOB_TAG | offset` with
///   `offset < MAX_BLOB_OFFSET`, so a tagged word can never equal
///   `VALUE_TOMBSTONE` — the deletion marker is out-of-band *by
///   construction*, and the full payload domain (including the 8-byte
///   payload equal to `u64::MAX.to_le_bytes()`) is storable.
pub const VALUE_TOMBSTONE: Value = u64::MAX;

/// Tag bit marking an index word as a **blob-log offset** rather than an
/// inline `u64` value: a payload store's table maps `key →
/// BLOB_TAG | offset`, where `offset` locates a length-framed,
/// checksummed record in the store's append-only blob log (see
/// `blob::BlobLog`). Offsets are bounded by [`MAX_BLOB_OFFSET`], so a
/// tagged word is always distinguishable from [`VALUE_TOMBSTONE`] — see
/// the sentinel-domain note on [`VALUE_TOMBSTONE`].
pub const BLOB_TAG: Value = 1 << 63;

/// Exclusive upper bound on blob-log offsets stored in tagged index
/// words (2^62 bytes — far beyond any real log). Keeping a full untagged
/// bit of headroom below the tag means `BLOB_TAG | offset` can never
/// collide with [`VALUE_TOMBSTONE`] (which has every bit set).
pub const MAX_BLOB_OFFSET: u64 = 1 << 62;

/// An indivisible record: `(key, value)`.
///
/// The indivisibility assumption of the paper's lower bound — items are
/// moved or copied between memory and disk only in their entirety — is
/// embodied by the fact that blocks store whole `Item`s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Item {
    /// The key (hash value) of the item.
    pub key: Key,
    /// Associated data.
    pub value: Value,
}

impl Item {
    /// Creates an item from a key/value pair.
    #[inline]
    pub const fn new(key: Key, value: Value) -> Self {
        Item { key, value }
    }

    /// An item carrying a key only (`value = 0`), matching the paper's
    /// one-word items.
    #[inline]
    pub const fn key_only(key: Key) -> Self {
        Item { key, value: 0 }
    }

    /// Whether this slot holds the tombstone sentinel.
    #[inline]
    pub const fn is_tombstone(&self) -> bool {
        self.key == KEY_TOMBSTONE
    }

    /// The tombstone sentinel item.
    #[inline]
    pub const fn tombstone() -> Self {
        Item { key: KEY_TOMBSTONE, value: 0 }
    }

    /// A per-key deletion marker for `key` (see [`VALUE_TOMBSTONE`]): it
    /// hashes like `key`, so it lands in `key`'s bucket and shadows
    /// deeper copies during shallow-first lookup and level merges.
    #[inline]
    pub const fn delete_marker(key: Key) -> Self {
        Item { key, value: VALUE_TOMBSTONE }
    }

    /// Whether this item is a per-key deletion marker.
    #[inline]
    pub const fn is_delete_marker(&self) -> bool {
        self.value == VALUE_TOMBSTONE
    }
}

impl core::fmt::Debug for Item {
    /// Renders the sentinels distinctly — `Item(‡)` for the slot
    /// tombstone, `Item(k→‡del)` for a deletion marker — so a torture
    /// failure dump never shows a marker as an ordinary
    /// `Item(k→18446744073709551615)`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_tombstone() {
            write!(f, "Item(‡)")
        } else if self.is_delete_marker() {
            write!(f, "Item({}→‡del)", self.key)
        } else {
            write!(f, "Item({}→{})", self.key, self.value)
        }
    }
}

impl From<(Key, Value)> for Item {
    #[inline]
    fn from((key, value): (Key, Value)) -> Self {
        Item { key, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_only_zeroes_value() {
        let it = Item::key_only(42);
        assert_eq!(it.key, 42);
        assert_eq!(it.value, 0);
    }

    #[test]
    fn tombstone_is_detected() {
        assert!(Item::tombstone().is_tombstone());
        assert!(!Item::new(0, 0).is_tombstone());
        assert!(Item::new(KEY_TOMBSTONE, 7).is_tombstone());
    }

    #[test]
    fn delete_marker_keeps_the_key() {
        let d = Item::delete_marker(42);
        assert_eq!(d.key, 42);
        assert!(d.is_delete_marker());
        assert!(!d.is_tombstone(), "a delete marker is not the slot sentinel");
        assert!(!Item::new(42, 0).is_delete_marker());
    }

    #[test]
    fn tuple_conversion() {
        let it: Item = (3, 9).into();
        assert_eq!(it, Item::new(3, 9));
    }

    #[test]
    fn debug_format_marks_tombstones() {
        assert_eq!(format!("{:?}", Item::new(1, 2)), "Item(1→2)");
        assert_eq!(format!("{:?}", Item::tombstone()), "Item(‡)");
    }

    #[test]
    fn debug_format_marks_delete_markers_distinctly() {
        assert_eq!(format!("{:?}", Item::delete_marker(42)), "Item(42→‡del)");
    }

    #[test]
    fn blob_tagged_words_never_collide_with_sentinels() {
        // The out-of-band deletion design: every representable tagged
        // word is distinct from VALUE_TOMBSTONE (and from any untagged
        // user value, which lacks the tag bit on the legacy path).
        for off in [0, 1, MAX_BLOB_OFFSET - 1] {
            let word = BLOB_TAG | off;
            assert_ne!(word, VALUE_TOMBSTONE);
            assert!(word & BLOB_TAG != 0);
            assert_eq!(word & !BLOB_TAG, off);
        }
        const { assert!(MAX_BLOB_OFFSET & BLOB_TAG == 0, "offsets stay clear of the tag bit") }
    }

    #[test]
    fn ordering_is_by_key_then_value() {
        assert!(Item::new(1, 9) < Item::new(2, 0));
        assert!(Item::new(1, 1) < Item::new(1, 2));
    }
}
