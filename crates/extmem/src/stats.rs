//! I/O accounting: the complexity measure of the external memory model.

/// How a read-modify-write of a single block is priced.
///
/// Footnote 2 of the paper: "since disk I/Os are dominated by the seek
/// time, writing a block immediately after reading it can be considered as
/// one I/O". All of the paper's bounds (`1 + 1/2^Ω(b)` insertions for the
/// standard table, etc.) use that convention.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IoCostModel {
    /// Read-then-write-back of one block costs **1** I/O (paper's model).
    #[default]
    SeekDominated,
    /// Every block transfer costs 1 I/O, so a read-modify-write costs **2**.
    Strict,
}

impl IoCostModel {
    /// Cost charged for one read-modify-write under this model.
    #[inline]
    pub fn rmw_cost(self) -> u64 {
        match self {
            IoCostModel::SeekDominated => 1,
            IoCostModel::Strict => 2,
        }
    }
}

/// Monotone counters of block transfers performed by a [`crate::Disk`].
///
/// `reads` and `writes` count plain transfers; `rmws` counts combined
/// read-modify-write operations, priced by the [`IoCostModel`].
#[derive(Clone, Debug, Default)]
pub struct IoStats {
    reads: u64,
    writes: u64,
    rmws: u64,
    allocs: u64,
    frees: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_read(&mut self) {
        self.reads += 1;
    }

    #[inline]
    pub(crate) fn record_write(&mut self) {
        self.writes += 1;
    }

    #[inline]
    pub(crate) fn record_rmw(&mut self) {
        self.rmws += 1;
    }

    #[inline]
    pub(crate) fn record_alloc(&mut self) {
        self.allocs += 1;
    }

    #[inline]
    pub(crate) fn record_free(&mut self) {
        self.frees += 1;
    }

    /// Plain block reads.
    #[inline]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Plain block writes.
    #[inline]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Combined read-modify-write operations.
    #[inline]
    pub fn rmws(&self) -> u64 {
        self.rmws
    }

    /// Blocks allocated (metadata, not an I/O).
    #[inline]
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Blocks freed (metadata, not an I/O).
    #[inline]
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Total I/Os under `model`.
    #[inline]
    pub fn total(&self, model: IoCostModel) -> u64 {
        self.reads + self.writes + model.rmw_cost() * self.rmws
    }

    /// An immutable copy of the counters, for epoch/delta measurements.
    #[inline]
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads,
            writes: self.writes,
            rmws: self.rmws,
            allocs: self.allocs,
            frees: self.frees,
        }
    }
}

/// A point-in-time copy of [`IoStats`] counters.
///
/// Experiments measure phases as deltas between two snapshots:
///
/// ```
/// use dxh_extmem::{mem_disk, IoCostModel};
/// let mut d = mem_disk(4);
/// let before = d.stats().snapshot();
/// let id = d.allocate().unwrap();
/// let _ = d.read(id).unwrap();
/// let delta = d.stats().snapshot().since(&before);
/// assert_eq!(delta.total(IoCostModel::SeekDominated), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Plain reads at snapshot time.
    pub reads: u64,
    /// Plain writes at snapshot time.
    pub writes: u64,
    /// Read-modify-writes at snapshot time.
    pub rmws: u64,
    /// Allocations at snapshot time.
    pub allocs: u64,
    /// Frees at snapshot time.
    pub frees: u64,
}

impl IoSnapshot {
    /// Counter-wise difference `self − earlier`. Panics in debug builds if
    /// `earlier` is not actually earlier (counters are monotone).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        debug_assert!(self.reads >= earlier.reads && self.writes >= earlier.writes);
        IoSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            rmws: self.rmws - earlier.rmws,
            allocs: self.allocs - earlier.allocs,
            frees: self.frees - earlier.frees,
        }
    }

    /// Total I/Os in this snapshot/delta under `model`.
    #[inline]
    pub fn total(&self, model: IoCostModel) -> u64 {
        self.reads + self.writes + model.rmw_cost() * self.rmws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_respect_cost_model() {
        let mut s = IoStats::new();
        s.record_read();
        s.record_write();
        s.record_rmw();
        s.record_rmw();
        assert_eq!(s.total(IoCostModel::SeekDominated), 1 + 1 + 2);
        assert_eq!(s.total(IoCostModel::Strict), 1 + 1 + 4);
    }

    #[test]
    fn snapshot_delta() {
        let mut s = IoStats::new();
        s.record_read();
        let a = s.snapshot();
        s.record_write();
        s.record_rmw();
        let d = s.snapshot().since(&a);
        assert_eq!(d.reads, 0);
        assert_eq!(d.writes, 1);
        assert_eq!(d.rmws, 1);
        assert_eq!(d.total(IoCostModel::SeekDominated), 2);
    }

    #[test]
    fn alloc_free_are_metadata_not_io() {
        let mut s = IoStats::new();
        s.record_alloc();
        s.record_free();
        assert_eq!(s.total(IoCostModel::Strict), 0);
        assert_eq!(s.allocs(), 1);
        assert_eq!(s.frees(), 1);
    }

    #[test]
    fn default_model_is_seek_dominated() {
        assert_eq!(IoCostModel::default(), IoCostModel::SeekDominated);
        assert_eq!(IoCostModel::default().rmw_cost(), 1);
    }
}
