//! The append-only payload log: variable-length byte values behind the
//! hash index.
//!
//! The paper's model stores one-word items, so the tables above this
//! crate map `u64 → u64`. Real data does not fit in a word; the standard
//! production shape (simd-r-drive's DataStore, the buffer-tree
//! dictionaries of Conway et al.) keeps the hash table as an **index**
//! and the payloads in an append-only data log. [`BlobLog`] is that log:
//!
//! * every record is **length-framed and checksummed** —
//!   `len: u32 | fnv1a64(payload): u64 | payload` — so a torn tail can
//!   never be mistaken for data;
//! * [`BlobLog::append`] returns `(offset, len)`; the caller stores
//!   `BLOB_TAG | offset` as the index word (see [`crate::BLOB_TAG`]);
//! * [`BlobLog::get`] is **zero-copy**: a borrowed `&[u8]` view over the
//!   log's in-memory region, one O(1) bounds check, no per-read
//!   checksum or copy (integrity is established once, at open, when the
//!   committed prefix is verified frame by frame). On platforms with
//!   `mmap` the region could be a file mapping; this workspace forbids
//!   `unsafe`, so the region is a cached read of the committed prefix
//!   plus the appends made through this handle — the same zero-copy
//!   read path, populated by `read(2)` instead of a page fault;
//! * durability is the caller's ordering obligation: appends are
//!   volatile until [`BlobLog::sync`], and the `dxh-dura` rule
//!   `blob-sync-before-index-commit` demands the sync precede any index
//!   commit that references the new offsets.
//!
//! The storage seam is [`BlobFile`]: a real file ([`FileBlob`]) or the
//! crash simulator's blob namespace (`SimBlob` in `sim_disk`), so every
//! torture sweep covers torn appends with the same code path.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{ExtMemError, Result};
use crate::item::MAX_BLOB_OFFSET;
use crate::sim_disk::fnv1a64;

/// Bytes of framing before each payload: `len: u32 LE | fnv1a64: u64 LE`.
pub const BLOB_FRAME_HEADER: usize = 12;

/// The byte-level storage a [`BlobLog`] runs on: an append-only file
/// with explicit sync. Implementations: [`FileBlob`] (a real file) and
/// the simulator's `SimBlob` (volatile until sync, torn-tail lottery at
/// a power cycle).
pub trait BlobFile {
    /// Appends `bytes` at the end of the file (volatile until
    /// [`BlobFile::sync`]).
    fn append(&mut self, bytes: &[u8]) -> Result<()>;
    /// `fdatasync`: makes every prior append durable.
    fn sync(&mut self) -> Result<()>;
    /// Current file length in bytes (appends included).
    fn len(&self) -> u64;
    /// Whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Reads the whole file (the open-time region load).
    fn read_all(&mut self) -> Result<Vec<u8>>;
    /// Truncates to `len` bytes — recovery's crash-tail discard.
    fn truncate(&mut self, len: u64) -> Result<()>;
}

/// A [`BlobFile`] over a real file: buffered appends, `sync_data`
/// durability — the blob twin of `FileDisk`.
pub struct FileBlob {
    file: File,
    len: u64,
}

impl FileBlob {
    /// Creates (truncating) the blob file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(FileBlob { file, len: 0 })
    }

    /// Opens the existing blob file at `path` without truncating.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(FileBlob { file, len })
    }
}

impl BlobFile for FileBlob {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(bytes)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::with_capacity(self.len as usize);
        self.file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        self.len = len;
        Ok(())
    }
}

/// The append-only, length-framed, checksummed payload log (module
/// docs above). Generic over its [`BlobFile`] so the real store and the
/// crash simulator share the exact recovery path.
pub struct BlobLog<F: BlobFile> {
    file: F,
    /// The in-memory region every [`BlobLog::get`] borrows from: the
    /// verified committed prefix loaded at open, plus every append made
    /// through this handle (a process reads its own writes).
    region: Vec<u8>,
    /// Bytes appended since the last [`BlobLog::sync`].
    unsynced: u64,
}

impl<F: BlobFile> BlobLog<F> {
    /// Wraps a freshly created (empty) [`BlobFile`].
    pub fn create(file: F) -> Result<Self> {
        if !file.is_empty() {
            return Err(ExtMemError::BadConfig(
                "BlobLog::create expects an empty file (use open to recover)".into(),
            ));
        }
        Ok(BlobLog { file, region: Vec::new(), unsynced: 0 })
    }

    /// Opens an existing log, recovering around `committed_len` — the
    /// length the caller's last index commit covers (a manifest field).
    /// The committed prefix is verified frame by frame (length framing
    /// and checksum), so every offset the committed index holds reads
    /// back intact — or the open fails with [`ExtMemError::Corrupt`]
    /// instead of serving bad bytes. Bytes **past** the commit point
    /// are a crash tail: whole checksum-valid frames there are *kept*
    /// (a durable append whose index commit hadn't landed yet — the
    /// index's own blocks can survive a crash ahead of the manifest
    /// and legitimately reference them), and the log is truncated at
    /// the first torn or corrupt frame.
    pub fn open(mut file: F, committed_len: u64) -> Result<Self> {
        if file.len() < committed_len {
            return Err(ExtMemError::Corrupt(format!(
                "blob log holds {} bytes, index commit covers {committed_len}",
                file.len()
            )));
        }
        let mut region = file.read_all()?;
        if (region.len() as u64) < committed_len {
            return Err(ExtMemError::Corrupt(format!(
                "blob log read {} bytes, index commit covers {committed_len}",
                region.len()
            )));
        }
        verify_frames(&region[..committed_len as usize])?;
        let keep = committed_len as usize + valid_prefix(&region[committed_len as usize..]);
        if keep < region.len() {
            file.truncate(keep as u64)?;
            region.truncate(keep);
        }
        Ok(BlobLog { file, region, unsynced: 0 })
    }

    /// Appends `payload` as one framed record; returns `(offset, len)` —
    /// the offset to store (tagged) in the index word and the framed
    /// length on disk. Volatile until [`BlobLog::sync`].
    pub fn append(&mut self, payload: &[u8]) -> Result<(u64, u32)> {
        let frame_len = BLOB_FRAME_HEADER
            .checked_add(payload.len())
            .filter(|&n| n <= u32::MAX as usize)
            .ok_or_else(|| {
                ExtMemError::BadConfig("payload exceeds the 4 GiB frame bound".into())
            })?;
        let offset = self.region.len() as u64;
        if offset + frame_len as u64 > MAX_BLOB_OFFSET {
            // Offsets must stay below the index word's tag bit headroom.
            return Err(ExtMemError::BadConfig("blob log exceeds the offset bound".into()));
        }
        let mut frame = Vec::with_capacity(frame_len);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.append(&frame)?;
        self.region.extend_from_slice(&frame);
        self.unsynced += frame_len as u64;
        Ok((offset, frame_len as u32))
    }

    /// The zero-copy read path: a borrowed view of the payload at
    /// `offset`, straight out of the mapped region — one bounds check,
    /// no copy, no per-read checksum (the committed prefix was verified
    /// at open; appends made through this handle are the process's own
    /// bytes). Errors on an offset that does not frame a record.
    pub fn get(&self, offset: u64) -> Result<&[u8]> {
        let (start, len) = self.frame_bounds(offset)?;
        Ok(&self.region[start..start + len])
    }

    /// The copying read path: re-verifies the record's checksum and
    /// returns an owned copy — what a caller crossing a thread or
    /// trust boundary uses, and the `exp_blob` bench's comparison arm.
    pub fn get_verified(&self, offset: u64) -> Result<Vec<u8>> {
        let (start, len) = self.frame_bounds(offset)?;
        let header = offset as usize;
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&self.region[header + 4..header + 12]);
        let payload = &self.region[start..start + len];
        if fnv1a64(payload) != u64::from_le_bytes(sum) {
            return Err(ExtMemError::Corrupt(format!(
                "blob record at offset {offset} fails its checksum"
            )));
        }
        Ok(payload.to_vec())
    }

    /// Bounds-checks the frame at `offset`; returns the payload's
    /// `(start, len)` within the region.
    fn frame_bounds(&self, offset: u64) -> Result<(usize, usize)> {
        let at = usize::try_from(offset)
            .ok()
            .filter(|&at| at + BLOB_FRAME_HEADER <= self.region.len())
            .ok_or_else(|| ExtMemError::Corrupt(format!("blob offset {offset} outside the log")))?;
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&self.region[at..at + 4]);
        let len = u32::from_le_bytes(len4) as usize;
        let start = at + BLOB_FRAME_HEADER;
        if start + len > self.region.len() {
            return Err(ExtMemError::Corrupt(format!(
                "blob record at offset {offset} overruns the log"
            )));
        }
        Ok((start, len))
    }

    /// `fdatasync`: every append so far becomes durable. The caller's
    /// index commit may reference the new offsets only after this
    /// returns (`blob-sync-before-index-commit`).
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Total log length in bytes (what an index commit after a
    /// [`BlobLog::sync`] records as the committed length).
    pub fn len(&self) -> u64 {
        self.region.len() as u64
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// Bytes appended since the last [`BlobLog::sync`].
    pub fn unsynced_bytes(&self) -> u64 {
        self.unsynced
    }
}

/// Walks `region` frame by frame, checking length framing and every
/// record's checksum — the open-time integrity pass that lets
/// [`BlobLog::get`] skip per-read verification.
fn verify_frames(region: &[u8]) -> Result<()> {
    let mut at = 0usize;
    while at < region.len() {
        if at + BLOB_FRAME_HEADER > region.len() {
            return Err(ExtMemError::Corrupt(format!(
                "blob log truncated mid-header at offset {at}"
            )));
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&region[at..at + 4]);
        let len = u32::from_le_bytes(len4) as usize;
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&region[at + 4..at + 12]);
        let start = at + BLOB_FRAME_HEADER;
        let end = start.checked_add(len).filter(|&e| e <= region.len()).ok_or_else(|| {
            ExtMemError::Corrupt(format!("blob log truncated mid-record at offset {at}"))
        })?;
        if fnv1a64(&region[start..end]) != u64::from_le_bytes(sum8) {
            return Err(ExtMemError::Corrupt(format!(
                "blob record at offset {at} fails its checksum"
            )));
        }
        at = end;
    }
    Ok(())
}

/// Byte length of the longest prefix of `tail` made of whole,
/// checksum-valid frames — recovery's keep boundary for the bytes past
/// the committed length (commits land on frame boundaries, so `tail`
/// always starts at one).
fn valid_prefix(tail: &[u8]) -> usize {
    let mut at = 0usize;
    loop {
        if at + BLOB_FRAME_HEADER > tail.len() {
            return at;
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&tail[at..at + 4]);
        let len = u32::from_le_bytes(len4) as usize;
        let start = at + BLOB_FRAME_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= tail.len()) else {
            return at;
        };
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&tail[at + 4..at + 12]);
        if fnv1a64(&tail[start..end]) != u64::from_le_bytes(sum8) {
            return at;
        }
        at = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dxh-blob-{tag}-{}", std::process::id()))
    }

    /// An in-memory BlobFile for unit tests (the crash-faithful twin is
    /// SimBlob in sim_disk).
    #[derive(Default)]
    struct MemBlob {
        bytes: Vec<u8>,
    }

    impl BlobFile for MemBlob {
        fn append(&mut self, bytes: &[u8]) -> Result<()> {
            self.bytes.extend_from_slice(bytes);
            Ok(())
        }
        fn sync(&mut self) -> Result<()> {
            Ok(())
        }
        fn len(&self) -> u64 {
            self.bytes.len() as u64
        }
        fn read_all(&mut self) -> Result<Vec<u8>> {
            Ok(self.bytes.clone())
        }
        fn truncate(&mut self, len: u64) -> Result<()> {
            self.bytes.truncate(len as usize);
            Ok(())
        }
    }

    #[test]
    fn append_get_round_trip_zero_copy_and_verified() {
        let mut log = BlobLog::create(MemBlob::default()).unwrap();
        let (o1, l1) = log.append(b"hello").unwrap();
        let (o2, _) = log.append(b"").unwrap();
        let (o3, _) = log.append(&[0xFF; 8]).unwrap();
        assert_eq!(o1, 0);
        assert_eq!(l1 as usize, BLOB_FRAME_HEADER + 5);
        assert_eq!(o2, l1 as u64);
        assert_eq!(log.get(o1).unwrap(), b"hello");
        assert_eq!(log.get(o2).unwrap(), b"");
        assert_eq!(log.get(o3).unwrap(), &[0xFF; 8], "u64::MAX-image payload is storable");
        assert_eq!(log.get_verified(o1).unwrap(), b"hello".to_vec());
    }

    #[test]
    fn get_rejects_non_frame_offsets() {
        let mut log = BlobLog::create(MemBlob::default()).unwrap();
        let (o, _) = log.append(b"abcdefgh").unwrap();
        assert!(log.get(o + 1).is_ok() || log.get(o + 1).is_err()); // never panics
        assert!(log.get(10_000).is_err(), "past the end");
        assert!(log.get_verified(o + 3).is_err(), "misaligned offset fails the checksum");
    }

    #[test]
    fn open_truncates_the_torn_tail_and_verifies_the_prefix() {
        let mut file = MemBlob::default();
        {
            let mut log = BlobLog::create(MemBlob::default()).unwrap();
            let _ = log.append(b"alpha").unwrap();
            let _ = log.append(b"beta").unwrap();
            file.bytes = log.region.clone();
        }
        let committed = file.len();
        // A torn half-append past the committed length.
        file.append(&[9, 0, 0, 0, 1, 2]).unwrap();
        let log = BlobLog::open(file, committed).unwrap();
        assert_eq!(log.len(), committed, "torn tail discarded");
        assert_eq!(log.get(0).unwrap(), b"alpha");
    }

    /// A whole valid frame past the commit point survives recovery: the
    /// index's own blocks can durably outrun the manifest, so the
    /// offsets they hold must stay servable. A torn frame *after* it is
    /// still cut.
    #[test]
    fn open_keeps_valid_frames_past_the_commitment() {
        let (mut file, committed, tail_off) = {
            let mut log = BlobLog::create(MemBlob::default()).unwrap();
            let _ = log.append(b"committed").unwrap();
            let committed = log.len();
            let (tail_off, _) = log.append(b"durable but uncommitted").unwrap();
            (MemBlob { bytes: log.region.clone() }, committed, tail_off)
        };
        file.append(&[44, 0, 0, 0, 7]).unwrap(); // torn half-append after it
        let log = BlobLog::open(file, committed).unwrap();
        assert_eq!(log.get(tail_off).unwrap(), b"durable but uncommitted");
        assert_eq!(
            log.len(),
            tail_off + (BLOB_FRAME_HEADER + b"durable but uncommitted".len()) as u64,
            "the torn half-append is cut, the valid frame kept"
        );
    }

    #[test]
    fn open_rejects_corruption_inside_the_committed_prefix() {
        let mut good = BlobLog::create(MemBlob::default()).unwrap();
        let _ = good.append(b"payload").unwrap();
        let mut bytes = good.region.clone();
        let committed = bytes.len() as u64;
        *bytes.last_mut().unwrap() ^= 0xFF; // flip a payload byte
        let r = BlobLog::open(MemBlob { bytes }, committed);
        assert!(matches!(r, Err(ExtMemError::Corrupt(_))), "checksum rejects the record");
        // And a log shorter than the commitment is corruption, not recovery.
        let r = BlobLog::open(MemBlob::default(), committed);
        assert!(matches!(r, Err(ExtMemError::Corrupt(_))));
    }

    #[test]
    fn unsynced_accounting_tracks_appends_and_sync() {
        let mut log = BlobLog::create(MemBlob::default()).unwrap();
        assert_eq!(log.unsynced_bytes(), 0);
        let (_, l) = log.append(b"x").unwrap();
        assert_eq!(log.unsynced_bytes(), l as u64);
        log.sync().unwrap();
        assert_eq!(log.unsynced_bytes(), 0);
        assert_eq!(log.len(), l as u64);
    }

    #[test]
    fn file_blob_round_trips_across_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let committed;
        {
            let mut log = BlobLog::create(FileBlob::create(&path).unwrap()).unwrap();
            let (o, _) = log.append(b"durable bytes").unwrap();
            assert_eq!(o, 0);
            log.sync().unwrap();
            committed = log.len();
        }
        let log = BlobLog::open(FileBlob::open(&path).unwrap(), committed).unwrap();
        assert_eq!(log.get(0).unwrap(), b"durable bytes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_blob_open_discards_a_torn_tail_past_the_commitment() {
        let path = tmp("tail");
        let _ = std::fs::remove_file(&path);
        let committed;
        {
            let mut log = BlobLog::create(FileBlob::create(&path).unwrap()).unwrap();
            let _ = log.append(b"kept").unwrap();
            log.sync().unwrap();
            committed = log.len();
            // A torn append: header promising more bytes than exist.
            log.file.append(&[99, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        let log = BlobLog::open(FileBlob::open(&path).unwrap(), committed).unwrap();
        assert_eq!(log.len(), committed);
        assert!(log.get(committed).is_err(), "the discarded tail is unreachable");
        let _ = std::fs::remove_file(&path);
    }
}
