//! In-memory storage backend: the exact, deterministic simulator disk.

use crate::backend::{FreeRuns, StorageBackend};
use crate::block::{Block, BlockId};
use crate::error::{ExtMemError, Result};

/// An in-RAM "disk": a growable array of blocks with a free list.
///
/// This is the backend used by all experiments — it makes I/O *counting*
/// exact while keeping simulated runs fast and deterministic. Use
/// [`crate::FileDisk`] to exercise the identical code paths against a
/// real file.
pub struct MemDisk {
    block_capacity: usize,
    slots: Vec<Option<Block>>,
    free: Vec<u64>,
    /// `free` as coalesced intervals, for O(runs) contiguous-run search.
    runs: FreeRuns,
    live: u64,
}

impl MemDisk {
    /// A new empty disk with block capacity `b` items.
    pub fn new(block_capacity: usize) -> Self {
        assert!(block_capacity > 0, "block capacity must be positive");
        MemDisk {
            block_capacity,
            slots: Vec::new(),
            free: Vec::new(),
            runs: FreeRuns::default(),
            live: 0,
        }
    }

    fn slot(&self, id: BlockId) -> Result<&Block> {
        self.slots
            .get(id.raw() as usize)
            .and_then(|s| s.as_ref())
            .ok_or(ExtMemError::BadBlockId(id))
    }
}

impl StorageBackend for MemDisk {
    fn block_capacity(&self) -> usize {
        self.block_capacity
    }

    fn read(&mut self, id: BlockId) -> Result<Block> {
        Ok(self.slot(id)?.clone())
    }

    fn write(&mut self, id: BlockId, block: &Block) -> Result<()> {
        let slot = self
            .slots
            .get_mut(id.raw() as usize)
            .and_then(|s| s.as_mut())
            .ok_or(ExtMemError::BadBlockId(id))?;
        debug_assert_eq!(block.capacity(), self.block_capacity);
        *slot = block.clone();
        Ok(())
    }

    fn allocate(&mut self) -> Result<BlockId> {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            self.runs.remove(idx);
            self.slots[idx as usize] = Some(Block::new(self.block_capacity));
            return Ok(BlockId(idx));
        }
        let idx = self.slots.len() as u64;
        self.slots.push(Some(Block::new(self.block_capacity)));
        Ok(BlockId(idx))
    }

    fn allocate_contiguous(&mut self, n: usize) -> Result<BlockId> {
        // Same run-recycling policy as FileDisk, so block ids stay
        // identical across backends for identical workloads.
        if let Some(base) = self.runs.first_run_of(n) {
            let end = base + n as u64;
            self.free.retain(|&id| !(base..end).contains(&id));
            self.runs.remove_range(base, end);
            for id in base..end {
                self.slots[id as usize] = Some(Block::new(self.block_capacity));
            }
            self.live += n as u64;
            return Ok(BlockId(base));
        }
        let base = self.slots.len() as u64;
        self.slots.reserve(n);
        for _ in 0..n {
            self.slots.push(Some(Block::new(self.block_capacity)));
        }
        self.live += n as u64;
        Ok(BlockId(base))
    }

    fn free(&mut self, id: BlockId) -> Result<()> {
        let slot = self.slots.get_mut(id.raw() as usize).ok_or(ExtMemError::BadBlockId(id))?;
        if slot.is_none() {
            return Err(ExtMemError::BadBlockId(id));
        }
        *slot = None;
        self.free.push(id.raw());
        self.runs.insert(id.raw());
        self.live -= 1;
        Ok(())
    }

    fn live_blocks(&self) -> u64 {
        self.live
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    #[test]
    fn allocate_read_write_round_trip() {
        let mut d = MemDisk::new(4);
        let id = d.allocate().unwrap();
        let mut blk = d.read(id).unwrap();
        assert!(blk.is_empty());
        blk.push(Item::new(1, 2)).unwrap();
        d.write(id, &blk).unwrap();
        assert_eq!(d.read(id).unwrap().find(1), Some(2));
    }

    #[test]
    fn read_of_unallocated_or_freed_id_fails() {
        let mut d = MemDisk::new(4);
        assert!(d.read(BlockId(0)).is_err());
        let id = d.allocate().unwrap();
        d.free(id).unwrap();
        assert!(d.read(id).is_err());
        assert!(d.free(id).is_err(), "double free is rejected");
    }

    #[test]
    fn freed_ids_are_recycled() {
        let mut d = MemDisk::new(4);
        let a = d.allocate().unwrap();
        let _b = d.allocate().unwrap();
        d.free(a).unwrap();
        let c = d.allocate().unwrap();
        assert_eq!(c, a, "free list recycles ids");
        assert_eq!(d.live_blocks(), 2);
    }

    #[test]
    fn recycled_block_is_empty() {
        let mut d = MemDisk::new(4);
        let a = d.allocate().unwrap();
        let mut blk = d.read(a).unwrap();
        blk.push(Item::key_only(9)).unwrap();
        d.write(a, &blk).unwrap();
        d.free(a).unwrap();
        let a2 = d.allocate().unwrap();
        assert_eq!(a2, a);
        assert!(d.read(a2).unwrap().is_empty());
    }

    #[test]
    fn live_blocks_counts() {
        let mut d = MemDisk::new(2);
        assert_eq!(d.live_blocks(), 0);
        let ids: Vec<_> = (0..5).map(|_| d.allocate().unwrap()).collect();
        assert_eq!(d.live_blocks(), 5);
        d.free(ids[2]).unwrap();
        assert_eq!(d.live_blocks(), 4);
    }
}
