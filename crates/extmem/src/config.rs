//! Configuration of the external memory model parameters.

use crate::budget::{Enforcement, MemoryBudget};
use crate::disk::Disk;
use crate::error::{ExtMemError, Result};
use crate::mem_disk::MemDisk;
use crate::pool::EvictionPolicy;
use crate::stats::IoCostModel;

/// Buffer-pool sizing for [`ExtMemConfig`].
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Number of block frames.
    pub frames: usize,
    /// Replacement policy.
    pub policy: EvictionPolicy,
}

/// The model parameters `(b, m)` plus accounting and pooling choices.
///
/// The paper's parameter regime is `Ω(b^(1+2c)) < n/m < 2^o(b)` with
/// `b > log u`; [`ExtMemConfig::validate`] checks the structural
/// requirements (positivity, pool fits in memory) while experiments check
/// the regime bounds for their chosen `n`.
#[derive(Clone, Debug)]
pub struct ExtMemConfig {
    /// Block capacity in items.
    pub b: usize,
    /// Internal memory capacity in items.
    pub m: usize,
    /// I/O pricing convention.
    pub cost: IoCostModel,
    /// Optional generic buffer pool (charged against `m`).
    pub pool: Option<PoolConfig>,
    /// Budget enforcement policy.
    pub enforcement: Enforcement,
}

impl ExtMemConfig {
    /// A config with block size `b` and memory `m` (items), the paper's
    /// cost model, no pool, and erroring budget enforcement.
    pub fn new(b: usize, m: usize) -> Self {
        ExtMemConfig {
            b,
            m,
            cost: IoCostModel::SeekDominated,
            pool: None,
            enforcement: Enforcement::Error,
        }
    }

    /// Sets the I/O cost model.
    pub fn cost_model(mut self, cost: IoCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Attaches a generic buffer pool of `frames` frames.
    pub fn with_pool(mut self, frames: usize, policy: EvictionPolicy) -> Self {
        self.pool = Some(PoolConfig { frames, policy });
        self
    }

    /// Sets the budget enforcement policy.
    pub fn with_enforcement(mut self, e: Enforcement) -> Self {
        self.enforcement = e;
        self
    }

    /// Structural validation.
    pub fn validate(&self) -> Result<()> {
        if self.b == 0 {
            return Err(ExtMemError::BadConfig("b must be positive".into()));
        }
        if self.m == 0 {
            return Err(ExtMemError::BadConfig("m must be positive".into()));
        }
        if let Some(p) = &self.pool {
            if p.frames == 0 {
                return Err(ExtMemError::BadConfig("pool needs at least one frame".into()));
            }
            if p.frames * self.b > self.m {
                return Err(ExtMemError::BadConfig(format!(
                    "pool of {} frames × b={} items does not fit in m={}",
                    p.frames, self.b, self.m
                )));
            }
        }
        Ok(())
    }

    /// Builds an in-memory disk and the matching budget.
    ///
    /// If a pool is configured it is attached and its `frames × b` items
    /// are already reserved in the returned budget.
    pub fn build_mem(&self) -> Result<(Disk<MemDisk>, MemoryBudget)> {
        self.validate()?;
        let mut disk = Disk::new(MemDisk::new(self.b), self.b, self.cost);
        let mut budget = MemoryBudget::with_enforcement(self.m, self.enforcement);
        if let Some(p) = &self.pool {
            disk.attach_pool(p.frames, p.policy);
            budget.reserve(p.frames * self.b)?;
        }
        Ok((disk, budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_positivity() {
        assert!(ExtMemConfig::new(0, 10).validate().is_err());
        assert!(ExtMemConfig::new(10, 0).validate().is_err());
        assert!(ExtMemConfig::new(8, 64).validate().is_ok());
    }

    #[test]
    fn pool_must_fit_in_memory() {
        let cfg = ExtMemConfig::new(8, 64).with_pool(9, EvictionPolicy::Lru);
        assert!(cfg.validate().is_err(), "9 frames × 8 items > m = 64");
        let cfg = ExtMemConfig::new(8, 64).with_pool(8, EvictionPolicy::Lru);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn build_mem_reserves_pool_memory() {
        let cfg = ExtMemConfig::new(8, 64).with_pool(4, EvictionPolicy::Lru);
        let (disk, budget) = cfg.build_mem().unwrap();
        assert!(disk.has_pool());
        assert_eq!(budget.used(), 32);
        assert_eq!(budget.remaining(), 32);
    }

    #[test]
    fn build_without_pool_reserves_nothing() {
        let (disk, budget) = ExtMemConfig::new(8, 64).build_mem().unwrap();
        assert!(!disk.has_pool());
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn builder_chaining() {
        let cfg = ExtMemConfig::new(4, 16)
            .cost_model(IoCostModel::Strict)
            .with_enforcement(Enforcement::Track);
        assert_eq!(cfg.cost, IoCostModel::Strict);
        assert_eq!(cfg.enforcement, Enforcement::Track);
    }
}
