//! File-backed storage backend: the same block interface over a real file.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::backend::{PersistentBackend, SlotAllocator, StorageBackend};
use crate::block::{Block, BlockId};
use crate::error::{ExtMemError, Result};

/// A disk backed by a single flat file of fixed-size block slots.
///
/// Layout: block `i` occupies bytes `[i · S, (i+1) · S)` where
/// `S = Block::encoded_len(b)`. An all-zero slot decodes as an empty
/// block (see [`Block::decode_from`]), so allocation past the high-water
/// mark is a pure `set_len` — the OS zero-fills the extension and no
/// initialization bytes are written.
///
/// The allocator state (free list) is kept in memory; callers that want
/// persistence across process restarts serialize it themselves (see
/// `dxh_core`'s store) and restore it via [`FileDisk::restore_free_list`].
/// Data durability is the caller's via [`StorageBackend::sync`]; the
/// paper's bounds do not depend on durability.
pub struct FileDisk {
    file: File,
    block_capacity: usize,
    block_bytes: usize,
    /// The shared allocator state machine (LIFO recycling, contiguous
    /// runs, deferred-recycling quarantine) — one implementation across
    /// backends, so block ids stay backend-deterministic.
    alloc: SlotAllocator,
    /// Scratch buffer reused across reads/writes to avoid per-op allocation.
    scratch: Vec<u8>,
}

impl FileDisk {
    /// Creates (truncating) a file-backed disk at `path` with block
    /// capacity `b` items.
    pub fn create(path: &Path, block_capacity: usize) -> Result<Self> {
        assert!(block_capacity > 0, "block capacity must be positive");
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(Self::from_file(file, block_capacity, 0))
    }

    /// Opens an existing disk file **without truncating**; every slot in
    /// the file is initially considered live (the high-water mark is the
    /// file length over the slot size). Restore the persisted free list
    /// with [`FileDisk::restore_free_list`] to resume allocation exactly
    /// where a previous process left off.
    pub fn open(path: &Path, block_capacity: usize) -> Result<Self> {
        assert!(block_capacity > 0, "block capacity must be positive");
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let block_bytes = Block::encoded_len(block_capacity) as u64;
        let len = file.metadata()?.len();
        if len % block_bytes != 0 {
            return Err(ExtMemError::Corrupt(format!(
                "file length {len} is not a multiple of the {block_bytes}-byte slot size"
            )));
        }
        Ok(Self::from_file(file, block_capacity, len / block_bytes))
    }

    fn from_file(file: File, block_capacity: usize, slots: u64) -> Self {
        let block_bytes = Block::encoded_len(block_capacity);
        FileDisk {
            file,
            block_capacity,
            block_bytes,
            alloc: SlotAllocator::with_all_live(slots),
            scratch: vec![0u8; block_bytes],
        }
    }

    /// Creates a disk in a fresh temporary file under `std::env::temp_dir()`.
    ///
    /// The file is removed from the namespace immediately (unix semantics:
    /// it lives until the handle drops), so tests cannot leak files.
    pub fn temp(block_capacity: usize) -> Result<Self> {
        let dir = std::env::temp_dir();
        // Unique-enough name: pid + monotonic counter.
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("dxh-filedisk-{}-{}.blk", std::process::id(), n));
        let disk = Self::create(&path, block_capacity)?;
        // Best-effort unlink; on platforms where this fails the file simply
        // stays behind in the temp dir.
        let _ = std::fs::remove_file(&path);
        Ok(disk)
    }

    /// High-water mark: total slots ever allocated (free ones included).
    pub fn slots(&self) -> u64 {
        self.alloc.slots()
    }

    /// Every dead slot — the recyclable stack plus any quarantined frees
    /// — in recycle order. Serialize this to persist the allocator: a
    /// sync point's metadata references none of these slots, so all of
    /// them are recyclable after a reopen.
    pub fn free_list(&self) -> Vec<u64> {
        self.alloc.free_list()
    }

    /// Number of dead slots (recyclable plus quarantined) without
    /// cloning the list: `slots() == live_blocks() + free_count()` always
    /// holds, which is the invariant GC and compaction accounting lean on.
    pub fn free_count(&self) -> usize {
        self.alloc.free_count()
    }

    /// Quarantines future frees (on) or recycles them immediately (off,
    /// the default). With deferral on, a freed block's contents stay on
    /// disk untouched — and its slot is never handed back by
    /// [`StorageBackend::allocate`] — until [`FileDisk::commit_frees`].
    /// Persistence layers turn this on so that blocks freed *after* their
    /// last durable sync point still hold the data that sync point's
    /// metadata references.
    pub fn set_defer_recycling(&mut self, defer: bool) {
        self.alloc.set_defer_recycling(defer);
    }

    /// Releases every quarantined slot for recycling. Call after the
    /// caller's own metadata (which lists those slots as free) is durable.
    pub fn commit_frees(&mut self) {
        self.alloc.commit_frees();
    }

    /// Restores a persisted free list after [`FileDisk::open`]. Ids must
    /// be in-range and distinct; the matching slots become dead until
    /// re-allocated.
    pub fn restore_free_list(&mut self, free: Vec<u64>) -> Result<()> {
        self.alloc.restore_free_list(free)
    }

    fn offset(&self, id: BlockId) -> u64 {
        id.raw() * self.block_bytes as u64
    }

    fn check_live(&self, id: BlockId) -> Result<()> {
        if self.alloc.is_dead(id.raw()) {
            return Err(ExtMemError::BadBlockId(id));
        }
        Ok(())
    }
}

impl StorageBackend for FileDisk {
    fn block_capacity(&self) -> usize {
        self.block_capacity
    }

    fn read(&mut self, id: BlockId) -> Result<Block> {
        self.check_live(id)?;
        let off = self.offset(id);
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(&mut self.scratch)?;
        Block::decode_from(self.block_capacity, &self.scratch)
    }

    fn write(&mut self, id: BlockId, block: &Block) -> Result<()> {
        self.check_live(id)?;
        debug_assert_eq!(block.capacity(), self.block_capacity);
        block.encode_into(&mut self.scratch);
        let off = self.offset(id);
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(&self.scratch)?;
        Ok(())
    }

    fn allocate(&mut self) -> Result<BlockId> {
        let idx = match self.alloc.peek_recycle() {
            Some(idx) => {
                // Recycled slot: reset the stale image to an empty block.
                // Only the 24-byte header matters — decode reads `len`
                // items, so stale item bytes past the header are inert.
                // The reset happens *before* the allocator state changes,
                // so a failed write leaves the slot safely on the free
                // list instead of in limbo (neither free nor live).
                self.file.seek(SeekFrom::Start(idx * self.block_bytes as u64))?;
                self.file.write_all(&[0u8; 24])?;
                self.alloc.commit_recycle(idx);
                idx
            }
            None => {
                // Extend the file first: the extension is zero-filled by
                // the OS, and an all-zero slot *is* a valid empty block,
                // so no initialization writes are needed.
                let new_slots = self.alloc.slots() + 1;
                self.file.set_len(new_slots * self.block_bytes as u64)?;
                self.alloc.commit_grow(1)
            }
        };
        Ok(BlockId(idx))
    }

    fn allocate_contiguous(&mut self, n: usize) -> Result<BlockId> {
        // Recycle a contiguous run of free slots when one exists (only
        // committed frees — quarantined slots still hold data a sync
        // point references). Stale images are reset by one zero-fill
        // write over the run, done *before* the allocator state changes
        // so a failed write leaves the run safely on the free list.
        if let Some(base) = self.alloc.peek_run(n) {
            self.file.seek(SeekFrom::Start(base * self.block_bytes as u64))?;
            // Zero in bounded chunks: a post-GC run can span most of the
            // file, and one Vec for the whole range would be unbounded
            // transient heap.
            const ZERO_CHUNK: usize = 1 << 18;
            let zeros = vec![0u8; ZERO_CHUNK.min(n * self.block_bytes)];
            let mut remaining = n * self.block_bytes;
            while remaining > 0 {
                let step = remaining.min(zeros.len());
                self.file.write_all(&zeros[..step])?;
                remaining -= step;
            }
            self.alloc.commit_run(base, n);
            return Ok(BlockId(base));
        }
        // One metadata syscall for the whole range — the zero-filled
        // extension already decodes as n empty blocks.
        let new_slots = self.alloc.slots() + n as u64;
        self.file.set_len(new_slots * self.block_bytes as u64)?;
        Ok(BlockId(self.alloc.commit_grow(n as u64)))
    }

    fn free(&mut self, id: BlockId) -> Result<()> {
        self.check_live(id)?;
        self.alloc.release(id.raw());
        Ok(())
    }

    fn live_blocks(&self) -> u64 {
        self.alloc.live()
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// The persistence surface, forwarded to the inherent methods (which
/// remain the primary documentation).
impl PersistentBackend for FileDisk {
    fn slots(&self) -> u64 {
        FileDisk::slots(self)
    }

    fn free_list(&self) -> Vec<u64> {
        FileDisk::free_list(self)
    }

    fn free_count(&self) -> usize {
        FileDisk::free_count(self)
    }

    fn set_defer_recycling(&mut self, defer: bool) {
        FileDisk::set_defer_recycling(self, defer)
    }

    fn commit_frees(&mut self) {
        FileDisk::commit_frees(self)
    }

    fn restore_free_list(&mut self, free: Vec<u64>) -> Result<()> {
        FileDisk::restore_free_list(self, free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    #[test]
    fn round_trip_on_real_file() {
        let mut d = FileDisk::temp(4).unwrap();
        let id = d.allocate().unwrap();
        let mut blk = d.read(id).unwrap();
        assert!(blk.is_empty());
        blk.push(Item::new(7, 8)).unwrap();
        blk.set_tag(3);
        blk.set_next(Some(BlockId(0)));
        d.write(id, &blk).unwrap();
        let back = d.read(id).unwrap();
        assert_eq!(back, blk);
    }

    #[test]
    fn many_blocks_keep_distinct_contents() {
        let mut d = FileDisk::temp(3).unwrap();
        let ids: Vec<_> = (0..20).map(|_| d.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut blk = Block::new(3);
            blk.push(Item::new(i as u64, 1000 + i as u64)).unwrap();
            d.write(id, &blk).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(d.read(id).unwrap().find(i as u64), Some(1000 + i as u64));
        }
    }

    #[test]
    fn freed_id_rejected_then_recycled() {
        let mut d = FileDisk::temp(2).unwrap();
        let a = d.allocate().unwrap();
        d.free(a).unwrap();
        assert!(d.read(a).is_err());
        let b = d.allocate().unwrap();
        assert_eq!(a, b);
        assert!(d.read(b).unwrap().is_empty());
    }

    #[test]
    fn recycled_slot_resets_stale_contents() {
        let mut d = FileDisk::temp(2).unwrap();
        let a = d.allocate().unwrap();
        let mut blk = d.read(a).unwrap();
        blk.push(Item::new(9, 9)).unwrap();
        blk.set_next(Some(BlockId(0)));
        blk.set_tag(7);
        d.write(a, &blk).unwrap();
        d.free(a).unwrap();
        let b = d.allocate().unwrap();
        assert_eq!(a, b);
        let back = d.read(b).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.tag(), 0);
        assert_eq!(back.next(), None);
    }

    #[test]
    fn contiguous_range_reads_empty_without_writes() {
        let mut d = FileDisk::temp(3).unwrap();
        let base = d.allocate_contiguous(50).unwrap();
        for i in 0..50 {
            assert!(d.read(BlockId(base.raw() + i)).unwrap().is_empty());
        }
        assert_eq!(d.live_blocks(), 50);
    }

    #[test]
    fn out_of_range_id_rejected() {
        let mut d = FileDisk::temp(2).unwrap();
        assert!(d.read(BlockId(5)).is_err());
        assert!(d.write(BlockId(5), &Block::new(2)).is_err());
    }

    #[test]
    fn free_check_stays_fast_under_churn() {
        // Regression shape for the old O(|free|) scan: heavy free/alloc
        // churn with a large standing free list. With the HashSet this
        // finishes instantly; with the linear scan it was quadratic.
        let mut d = FileDisk::temp(2).unwrap();
        let ids: Vec<_> = (0..2000).map(|_| d.allocate().unwrap()).collect();
        for &id in &ids[1000..] {
            d.free(id).unwrap();
        }
        for _ in 0..2000 {
            let id = d.allocate().unwrap();
            let _ = d.read(id).unwrap();
            d.free(id).unwrap();
        }
        assert_eq!(d.live_blocks(), 1000);
    }

    #[test]
    fn out_of_order_frees_coalesce_into_a_recyclable_run() {
        let mut d = FileDisk::temp(2).unwrap();
        let _anchor = d.allocate().unwrap(); // keep slot 0 live
        let ids: Vec<_> = (0..6).map(|_| d.allocate().unwrap()).collect();
        for &i in &[3usize, 1, 5, 2, 4] {
            d.free(ids[i]).unwrap();
        }
        let base = d.allocate_contiguous(5).unwrap();
        assert_eq!(base, ids[1], "the coalesced run is recycled, not the file grown");
        assert_eq!(d.slots(), 7, "no growth");
        for k in 0..5 {
            assert!(d.read(BlockId(base.raw() + k)).unwrap().is_empty());
        }
    }

    #[test]
    fn contiguous_search_stays_fast_with_a_fragmented_free_list() {
        // Regression shape for the old per-call clone+sort: a large free
        // list fragmented into runs of 2 (so no run of 3 ever exists),
        // probed by many region rebuilds that all fall through to file
        // growth. The incremental interval set makes each probe O(runs)
        // with no allocation; re-sorting the flat list made every one of
        // these failures pay O(F log F).
        let mut d = FileDisk::temp(2).unwrap();
        let ids: Vec<_> = (0..20_000).map(|_| d.allocate().unwrap()).collect();
        for quad in ids.chunks(4) {
            d.free(quad[0]).unwrap();
            d.free(quad[1]).unwrap();
        }
        for _ in 0..2_000 {
            let base = d.allocate_contiguous(3).unwrap();
            assert!(base.raw() >= 20_000, "no run of 3 exists among the frees");
        }
    }

    #[test]
    fn open_resumes_a_created_file() {
        let path =
            std::env::temp_dir().join(format!("dxh-filedisk-open-{}.blk", std::process::id()));
        let (id_a, id_b, free_list) = {
            let mut d = FileDisk::create(&path, 4).unwrap();
            let a = d.allocate().unwrap();
            let b = d.allocate().unwrap();
            let c = d.allocate().unwrap();
            let mut blk = Block::new(4);
            blk.push(Item::new(1, 11)).unwrap();
            d.write(a, &blk).unwrap();
            let mut blk = Block::new(4);
            blk.push(Item::new(2, 22)).unwrap();
            d.write(b, &blk).unwrap();
            d.free(c).unwrap();
            d.sync().unwrap();
            (a, b, d.free_list())
        };
        let mut d = FileDisk::open(&path, 4).unwrap();
        assert_eq!(d.slots(), 3);
        d.restore_free_list(free_list).unwrap();
        assert_eq!(d.live_blocks(), 2);
        assert_eq!(d.read(id_a).unwrap().find(1), Some(11));
        assert_eq!(d.read(id_b).unwrap().find(2), Some(22));
        // The freed slot is dead until re-allocated…
        assert!(d.read(BlockId(2)).is_err());
        // …and the next allocate recycles it, reset to empty.
        let c = d.allocate().unwrap();
        assert_eq!(c, BlockId(2));
        assert!(d.read(c).unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deferred_recycling_quarantines_contents_until_commit() {
        let mut d = FileDisk::temp(2).unwrap();
        d.set_defer_recycling(true);
        let a = d.allocate().unwrap();
        let mut blk = d.read(a).unwrap();
        blk.push(Item::new(5, 50)).unwrap();
        d.write(a, &blk).unwrap();
        d.free(a).unwrap();
        // Dead for reads, but NOT recyclable yet: the next allocate must
        // grow instead of handing the slot back (and resetting it).
        assert!(d.read(a).is_err());
        let b = d.allocate().unwrap();
        assert_ne!(a, b, "quarantined slot must not be recycled");
        // The quarantined contents are physically intact (a recovery path
        // re-marking the slot live would still read the old data).
        d.restore_free_list(Vec::new()).unwrap();
        assert_eq!(d.read(a).unwrap().find(5), Some(50));
        // After commit, frees recycle normally again.
        let mut d = FileDisk::temp(2).unwrap();
        d.set_defer_recycling(true);
        let a = d.allocate().unwrap();
        d.free(a).unwrap();
        assert_eq!(d.free_list(), vec![a.raw()], "pending frees appear in the persisted list");
        d.commit_frees();
        let b = d.allocate().unwrap();
        assert_eq!(a, b, "committed slot is recyclable");
    }

    #[test]
    fn restore_free_list_rejects_bad_ids() {
        let mut d = FileDisk::temp(2).unwrap();
        let _ = d.allocate().unwrap();
        assert!(d.restore_free_list(vec![5]).is_err(), "out of range");
        assert!(d.restore_free_list(vec![0, 0]).is_err(), "duplicate");
        assert!(d.restore_free_list(vec![0]).is_ok());
    }

    #[test]
    fn sync_succeeds() {
        let mut d = FileDisk::temp(2).unwrap();
        let _ = d.allocate().unwrap();
        d.sync().unwrap();
    }
}
