//! File-backed storage backend: the same block interface over a real file.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::backend::StorageBackend;
use crate::block::{Block, BlockId};
use crate::error::{ExtMemError, Result};

/// A disk backed by a single flat file of fixed-size block slots.
///
/// Layout: block `i` occupies bytes `[i · S, (i+1) · S)` where
/// `S = Block::encoded_len(b)`. The allocator state (free list) is kept in
/// memory; this backend is a demonstration substrate, not a crash-safe
/// storage engine, and the paper's bounds do not depend on durability.
pub struct FileDisk {
    file: File,
    block_capacity: usize,
    block_bytes: usize,
    /// Total slots ever allocated in the file (high-water mark).
    slots: u64,
    free: Vec<u64>,
    live: u64,
    /// Scratch buffer reused across reads/writes to avoid per-op allocation.
    scratch: Vec<u8>,
}

impl FileDisk {
    /// Creates (truncating) a file-backed disk at `path` with block
    /// capacity `b` items.
    pub fn create(path: &Path, block_capacity: usize) -> Result<Self> {
        assert!(block_capacity > 0, "block capacity must be positive");
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let block_bytes = Block::encoded_len(block_capacity);
        Ok(FileDisk {
            file,
            block_capacity,
            block_bytes,
            slots: 0,
            free: Vec::new(),
            live: 0,
            scratch: vec![0u8; block_bytes],
        })
    }

    /// Creates a disk in a fresh temporary file under `std::env::temp_dir()`.
    ///
    /// The file is removed from the namespace immediately (unix semantics:
    /// it lives until the handle drops), so tests cannot leak files.
    pub fn temp(block_capacity: usize) -> Result<Self> {
        let dir = std::env::temp_dir();
        // Unique-enough name: pid + monotonic counter.
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("dxh-filedisk-{}-{}.blk", std::process::id(), n));
        let disk = Self::create(&path, block_capacity)?;
        // Best-effort unlink; on platforms where this fails the file simply
        // stays behind in the temp dir.
        let _ = std::fs::remove_file(&path);
        Ok(disk)
    }

    fn offset(&self, id: BlockId) -> u64 {
        id.raw() * self.block_bytes as u64
    }

    fn check_live(&self, id: BlockId) -> Result<()> {
        if id.raw() >= self.slots || self.free.contains(&id.raw()) {
            return Err(ExtMemError::BadBlockId(id));
        }
        Ok(())
    }
}

impl StorageBackend for FileDisk {
    fn block_capacity(&self) -> usize {
        self.block_capacity
    }

    fn read(&mut self, id: BlockId) -> Result<Block> {
        self.check_live(id)?;
        let off = self.offset(id);
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(&mut self.scratch)?;
        Block::decode_from(self.block_capacity, &self.scratch)
    }

    fn write(&mut self, id: BlockId, block: &Block) -> Result<()> {
        self.check_live(id)?;
        debug_assert_eq!(block.capacity(), self.block_capacity);
        block.encode_into(&mut self.scratch);
        let off = self.offset(id);
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(&self.scratch)?;
        Ok(())
    }

    fn allocate(&mut self) -> Result<BlockId> {
        self.live += 1;
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let idx = self.slots;
                self.slots += 1;
                idx
            }
        };
        // Materialize an empty block image so reads after allocate succeed.
        let blk = Block::new(self.block_capacity);
        blk.encode_into(&mut self.scratch);
        self.file.seek(SeekFrom::Start(idx * self.block_bytes as u64))?;
        self.file.write_all(&self.scratch)?;
        Ok(BlockId(idx))
    }

    fn allocate_contiguous(&mut self, n: usize) -> Result<BlockId> {
        let base = self.slots;
        self.slots += n as u64;
        self.live += n as u64;
        // Materialize empty images for the whole range in one write.
        let empty = {
            let blk = Block::new(self.block_capacity);
            let mut one = vec![0u8; self.block_bytes];
            blk.encode_into(&mut one);
            one
        };
        self.file.seek(SeekFrom::Start(base * self.block_bytes as u64))?;
        for _ in 0..n {
            self.file.write_all(&empty)?;
        }
        Ok(BlockId(base))
    }

    fn free(&mut self, id: BlockId) -> Result<()> {
        self.check_live(id)?;
        self.free.push(id.raw());
        self.live -= 1;
        Ok(())
    }

    fn live_blocks(&self) -> u64 {
        self.live
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    #[test]
    fn round_trip_on_real_file() {
        let mut d = FileDisk::temp(4).unwrap();
        let id = d.allocate().unwrap();
        let mut blk = d.read(id).unwrap();
        assert!(blk.is_empty());
        blk.push(Item::new(7, 8)).unwrap();
        blk.set_tag(3);
        blk.set_next(Some(BlockId(0)));
        d.write(id, &blk).unwrap();
        let back = d.read(id).unwrap();
        assert_eq!(back, blk);
    }

    #[test]
    fn many_blocks_keep_distinct_contents() {
        let mut d = FileDisk::temp(3).unwrap();
        let ids: Vec<_> = (0..20).map(|_| d.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut blk = Block::new(3);
            blk.push(Item::new(i as u64, 1000 + i as u64)).unwrap();
            d.write(id, &blk).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(d.read(id).unwrap().find(i as u64), Some(1000 + i as u64));
        }
    }

    #[test]
    fn freed_id_rejected_then_recycled() {
        let mut d = FileDisk::temp(2).unwrap();
        let a = d.allocate().unwrap();
        d.free(a).unwrap();
        assert!(d.read(a).is_err());
        let b = d.allocate().unwrap();
        assert_eq!(a, b);
        assert!(d.read(b).unwrap().is_empty());
    }

    #[test]
    fn out_of_range_id_rejected() {
        let mut d = FileDisk::temp(2).unwrap();
        assert!(d.read(BlockId(5)).is_err());
        assert!(d.write(BlockId(5), &Block::new(2)).is_err());
    }

    #[test]
    fn sync_succeeds() {
        let mut d = FileDisk::temp(2).unwrap();
        let _ = d.allocate().unwrap();
        d.sync().unwrap();
    }
}
