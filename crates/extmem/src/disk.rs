//! The accounting disk: every bound in the paper is a statement about the
//! number of operations this type performs.

use crate::backend::StorageBackend;
use crate::block::{Block, BlockId};
use crate::error::Result;
use crate::pool::{BufferPool, EvictionPolicy, PoolStats};
use crate::stats::{IoCostModel, IoSnapshot, IoStats};

/// A disk with exact I/O accounting and an optional write-back buffer pool.
///
/// Without a pool, every [`Disk::read`] costs one read I/O, every
/// [`Disk::write`] one write I/O, and [`Disk::read_modify_write`] one
/// combined I/O (priced by the [`IoCostModel`], matching the paper's
/// footnote 2).
///
/// With a pool attached, the cache absorbs hits for free and I/Os are
/// charged at the backend boundary: misses cost a read, dirty evictions
/// and flushes cost a write. This is the "generic buffering" configuration
/// used by the A1 ablation.
pub struct Disk<B> {
    backend: B,
    b: usize,
    cost: IoCostModel,
    stats: IoStats,
    pool: Option<BufferPool>,
}

impl<B: StorageBackend> Disk<B> {
    /// Wraps `backend`; `b` must equal the backend's block capacity.
    pub fn new(backend: B, b: usize, cost: IoCostModel) -> Self {
        assert_eq!(backend.block_capacity(), b, "block capacity mismatch");
        Disk { backend, b, cost, stats: IoStats::new(), pool: None }
    }

    /// Attaches a write-back buffer pool of `frames` blocks.
    ///
    /// The *caller* is responsible for charging `frames × b` items to its
    /// [`crate::MemoryBudget`] — the pool is internal memory.
    pub fn attach_pool(&mut self, frames: usize, policy: EvictionPolicy) {
        self.pool = Some(BufferPool::new(frames, policy));
    }

    /// Detaches the pool, writing dirty frames back (each costs one write).
    pub fn detach_pool(&mut self) -> Result<()> {
        self.flush()?;
        self.pool = None;
        Ok(())
    }

    /// Block capacity `b` in items.
    #[inline]
    pub fn b(&self) -> usize {
        self.b
    }

    /// The configured I/O cost model.
    #[inline]
    pub fn cost_model(&self) -> IoCostModel {
        self.cost
    }

    /// The I/O counters.
    #[inline]
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Total I/Os so far, priced by the configured model.
    #[inline]
    pub fn total_ios(&self) -> u64 {
        self.stats.total(self.cost)
    }

    /// Convenience: a snapshot for phase measurement.
    #[inline]
    pub fn epoch(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// Convenience: counters accumulated since `epoch`.
    #[inline]
    pub fn since(&self, epoch: &IoSnapshot) -> IoSnapshot {
        self.stats.snapshot().since(epoch)
    }

    /// Pool statistics, when a pool is attached.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// Whether a pool is attached.
    pub fn has_pool(&self) -> bool {
        self.pool.is_some()
    }

    /// Number of live blocks on the backend.
    pub fn live_blocks(&self) -> u64 {
        self.backend.live_blocks()
    }

    /// Reads block `id` (1 read I/O, or free on a pool hit).
    pub fn read(&mut self, id: BlockId) -> Result<Block> {
        if let Some(pool) = self.pool.as_mut() {
            if let Some(blk) = pool.get(id) {
                return Ok(blk.clone());
            }
            // Miss: fetch, cache clean, pay for the read and any writeback.
            let blk = self.backend.read(id)?;
            self.stats.record_read();
            if let Some((wid, wblk)) = pool.insert(id, blk.clone(), false) {
                self.backend.write(wid, &wblk)?;
                self.stats.record_write();
            }
            Ok(blk)
        } else {
            let blk = self.backend.read(id)?;
            self.stats.record_read();
            Ok(blk)
        }
    }

    /// Writes block `id` (1 write I/O, or deferred into the pool).
    pub fn write(&mut self, id: BlockId, block: &Block) -> Result<()> {
        debug_assert!(block.capacity() == self.b);
        if let Some(pool) = self.pool.as_mut() {
            if let Some((wid, wblk)) = pool.insert(id, block.clone(), true) {
                self.backend.write(wid, &wblk)?;
                self.stats.record_write();
            }
            Ok(())
        } else {
            self.backend.write(id, block)?;
            self.stats.record_write();
            Ok(())
        }
    }

    /// Reads block `id`, applies `edit`, writes it back.
    ///
    /// Unpooled this is the paper's single-seek read-modify-write: it is
    /// charged as **one** combined I/O under [`IoCostModel::SeekDominated`]
    /// (two under [`IoCostModel::Strict`]). Pooled, a hit is free and a
    /// miss costs the read (plus eventual writeback on eviction).
    pub fn read_modify_write<R>(
        &mut self,
        id: BlockId,
        edit: impl FnOnce(&mut Block) -> R,
    ) -> Result<R> {
        if let Some(pool) = self.pool.as_mut() {
            if let Some(blk) = pool.get_mut(id) {
                return Ok(edit(blk));
            }
            // get_mut already counted the miss.
            let mut blk = self.backend.read(id)?;
            self.stats.record_read();
            let out = edit(&mut blk);
            if let Some((wid, wblk)) = pool.insert(id, blk, true) {
                self.backend.write(wid, &wblk)?;
                self.stats.record_write();
            }
            Ok(out)
        } else {
            let mut blk = self.backend.read(id)?;
            let out = edit(&mut blk);
            self.backend.write(id, &blk)?;
            self.stats.record_rmw();
            Ok(out)
        }
    }

    /// Reads block `id`, applies `edit`, and writes the block back **only
    /// if `edit` reports a modification** (its first return component).
    ///
    /// Accounting: modified → one combined read-modify-write (priced by
    /// the cost model); unmodified → one plain read. This is the right
    /// primitive for probe loops (blocked linear probing, chain walks)
    /// where most visited blocks are merely inspected.
    pub fn update<R>(
        &mut self,
        id: BlockId,
        edit: impl FnOnce(&mut Block) -> (bool, R),
    ) -> Result<R> {
        if let Some(pool) = self.pool.as_mut() {
            // Pool hit: mutation is free either way (get_mut marks dirty
            // conservatively; an unmodified hit stays clean via get).
            if pool.contains(id) {
                let blk = pool.get_mut(id).expect("contains() implies hit");
                let (_modified, out) = edit(blk);
                return Ok(out);
            }
            pool.record_miss();
            let mut blk = self.backend.read(id)?;
            self.stats.record_read();
            let (modified, out) = edit(&mut blk);
            if let Some((wid, wblk)) = pool.insert(id, blk, modified) {
                self.backend.write(wid, &wblk)?;
                self.stats.record_write();
            }
            Ok(out)
        } else {
            let mut blk = self.backend.read(id)?;
            let (modified, out) = edit(&mut blk);
            if modified {
                self.backend.write(id, &blk)?;
                self.stats.record_rmw();
            } else {
                self.stats.record_read();
            }
            Ok(out)
        }
    }

    /// Allocates a fresh empty block (metadata operation, no I/O charged;
    /// the first write to the block pays its I/O).
    pub fn allocate(&mut self) -> Result<BlockId> {
        let id = self.backend.allocate()?;
        self.stats.record_alloc();
        Ok(id)
    }

    /// Allocates `n` consecutive calls' worth of blocks, returning their ids.
    pub fn allocate_many(&mut self, n: usize) -> Result<Vec<BlockId>> {
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(self.allocate()?);
        }
        Ok(ids)
    }

    /// Allocates `n` blocks with consecutive ids, returning the base id.
    /// See [`StorageBackend::allocate_contiguous`] for why contiguity
    /// matters to the model.
    pub fn allocate_contiguous(&mut self, n: usize) -> Result<BlockId> {
        let base = self.backend.allocate_contiguous(n)?;
        for _ in 0..n {
            self.stats.record_alloc();
        }
        Ok(base)
    }

    /// Frees block `id`; a pooled copy is discarded without writeback.
    pub fn free(&mut self, id: BlockId) -> Result<()> {
        if let Some(pool) = self.pool.as_mut() {
            pool.discard(id);
        }
        self.backend.free(id)?;
        self.stats.record_free();
        Ok(())
    }

    /// Writes back all dirty pool frames (one write I/O each) and syncs
    /// the backend.
    pub fn flush(&mut self) -> Result<()> {
        if let Some(pool) = self.pool.as_mut() {
            for (id, blk) in pool.take_dirty() {
                self.backend.write(id, &blk)?;
                self.stats.record_write();
            }
        }
        self.backend.sync()
    }

    /// Read-only backend access (allocator state, diagnostics).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Direct backend access for tests and verification (bypasses both the
    /// pool and the accounting — never use on a measurement path).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use crate::mem_disk::MemDisk;

    fn disk(b: usize) -> Disk<MemDisk> {
        Disk::new(MemDisk::new(b), b, IoCostModel::SeekDominated)
    }

    #[test]
    fn unpooled_accounting() {
        let mut d = disk(4);
        let id = d.allocate().unwrap();
        let _ = d.read(id).unwrap();
        let mut blk = Block::new(4);
        blk.push(Item::key_only(1)).unwrap();
        d.write(id, &blk).unwrap();
        d.read_modify_write(id, |b| b.push(Item::key_only(2)).unwrap()).unwrap();
        assert_eq!(d.stats().reads(), 1);
        assert_eq!(d.stats().writes(), 1);
        assert_eq!(d.stats().rmws(), 1);
        assert_eq!(d.total_ios(), 3); // seek-dominated: rmw = 1
    }

    #[test]
    fn strict_model_prices_rmw_at_two() {
        let mut d = Disk::new(MemDisk::new(4), 4, IoCostModel::Strict);
        let id = d.allocate().unwrap();
        d.read_modify_write(id, |_| ()).unwrap();
        assert_eq!(d.total_ios(), 2);
    }

    #[test]
    fn rmw_returns_edit_result() {
        let mut d = disk(4);
        let id = d.allocate().unwrap();
        let n = d.read_modify_write(id, |b| b.len()).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn pooled_hits_are_free() {
        let mut d = disk(4);
        let id = d.allocate().unwrap();
        d.attach_pool(2, EvictionPolicy::Lru);
        let _ = d.read(id).unwrap(); // miss: 1 read
        let _ = d.read(id).unwrap(); // hit: free
        let _ = d.read(id).unwrap(); // hit: free
        assert_eq!(d.total_ios(), 1);
        assert_eq!(d.pool_stats().unwrap().hits, 2);
    }

    #[test]
    fn pooled_writes_are_deferred_until_eviction_or_flush() {
        let mut d = disk(4);
        let ids = d.allocate_many(3).unwrap();
        d.attach_pool(2, EvictionPolicy::Lru);
        let mut blk = Block::new(4);
        blk.push(Item::key_only(7)).unwrap();
        d.write(ids[0], &blk).unwrap(); // cached dirty, 0 I/O
        assert_eq!(d.total_ios(), 0);
        d.write(ids[1], &blk).unwrap(); // cached dirty, 0 I/O
        d.write(ids[2], &blk).unwrap(); // evicts ids[0] dirty: 1 write
        assert_eq!(d.stats().writes(), 1);
        d.flush().unwrap(); // two dirty frames remain
        assert_eq!(d.stats().writes(), 3);
        // After flush the data is durable on the backend.
        assert_eq!(d.backend_mut().read(ids[0]).unwrap().find(7), Some(0));
    }

    #[test]
    fn pooled_rmw_hit_is_free_and_visible() {
        let mut d = disk(4);
        let id = d.allocate().unwrap();
        d.attach_pool(1, EvictionPolicy::Lru);
        let _ = d.read(id).unwrap(); // load into pool: 1 read
        d.read_modify_write(id, |b| b.push(Item::key_only(5)).unwrap()).unwrap(); // hit
        assert_eq!(d.total_ios(), 1);
        assert_eq!(d.read(id).unwrap().find(5), Some(0)); // hit, sees the edit
        assert_eq!(d.total_ios(), 1);
    }

    #[test]
    fn free_discards_pooled_copy_without_writeback() {
        let mut d = disk(4);
        let id = d.allocate().unwrap();
        d.attach_pool(1, EvictionPolicy::Lru);
        d.read_modify_write(id, |b| b.push(Item::key_only(5)).unwrap()).unwrap();
        d.free(id).unwrap();
        d.flush().unwrap();
        // read + no writes: the dirty frame died with the block.
        assert_eq!(d.stats().reads(), 1);
        assert_eq!(d.stats().writes(), 0);
    }

    #[test]
    fn detach_pool_flushes() {
        let mut d = disk(4);
        let id = d.allocate().unwrap();
        d.attach_pool(1, EvictionPolicy::Lru);
        let mut blk = Block::new(4);
        blk.push(Item::key_only(3)).unwrap();
        d.write(id, &blk).unwrap();
        d.detach_pool().unwrap();
        assert!(!d.has_pool());
        assert_eq!(d.stats().writes(), 1);
        // Subsequent ops are unpooled again.
        let _ = d.read(id).unwrap();
        assert_eq!(d.stats().reads(), 1);
    }

    #[test]
    fn update_counts_read_when_unmodified_rmw_when_modified() {
        let mut d = disk(4);
        let id = d.allocate().unwrap();
        let len = d.update(id, |b| (false, b.len())).unwrap();
        assert_eq!(len, 0);
        assert_eq!(d.stats().reads(), 1);
        assert_eq!(d.stats().rmws(), 0);
        d.update(id, |b| {
            b.push(Item::key_only(1)).unwrap();
            (true, ())
        })
        .unwrap();
        assert_eq!(d.stats().rmws(), 1);
        assert_eq!(d.read(id).unwrap().len(), 1);
    }

    #[test]
    fn update_through_pool_is_free_on_hit() {
        let mut d = disk(4);
        let id = d.allocate().unwrap();
        d.attach_pool(1, EvictionPolicy::Lru);
        let _ = d.read(id).unwrap(); // 1 read, now cached
        d.update(id, |b| {
            b.push(Item::key_only(2)).unwrap();
            (true, ())
        })
        .unwrap();
        assert_eq!(d.total_ios(), 1, "pooled update hit is free");
        d.flush().unwrap();
        assert_eq!(d.stats().writes(), 1, "dirty frame written at flush");
    }

    #[test]
    fn pooled_update_misses_are_counted() {
        let mut d = disk(4);
        let a = d.allocate().unwrap();
        let b2 = d.allocate().unwrap();
        d.attach_pool(1, EvictionPolicy::Lru);
        d.update(a, |_| (false, ())).unwrap(); // miss
        d.update(a, |_| (false, ())).unwrap(); // hit
        d.update(b2, |_| (false, ())).unwrap(); // miss (evicts a)
        let p = d.pool_stats().unwrap();
        assert_eq!(p.misses, 2);
        assert_eq!(p.hits, 1);
    }

    #[test]
    fn allocate_contiguous_ids_are_consecutive() {
        let mut d = disk(4);
        let _ = d.allocate().unwrap();
        let base = d.allocate_contiguous(5).unwrap();
        for i in 0..5 {
            let id = BlockId(base.raw() + i);
            assert!(d.read(id).unwrap().is_empty());
        }
        assert_eq!(d.stats().allocs(), 6);
    }

    #[test]
    fn contiguous_allocation_ignores_free_list() {
        let mut d = disk(4);
        let a = d.allocate().unwrap();
        let _b = d.allocate().unwrap();
        d.free(a).unwrap();
        let base = d.allocate_contiguous(3).unwrap();
        assert!(base.raw() >= 2, "contiguous range must not recycle holes");
    }

    #[test]
    fn epoch_delta_measures_a_phase() {
        let mut d = disk(4);
        let id = d.allocate().unwrap();
        let _ = d.read(id).unwrap();
        let e = d.epoch();
        let _ = d.read(id).unwrap();
        let _ = d.read(id).unwrap();
        assert_eq!(d.since(&e).reads, 2);
    }

    #[test]
    fn file_backend_behaves_identically() {
        use crate::file_disk::FileDisk;
        let mut mem = disk(4);
        let mut file = Disk::new(FileDisk::temp(4).unwrap(), 4, IoCostModel::SeekDominated);
        for d in [&mut mem as &mut dyn AnyDisk, &mut file as &mut dyn AnyDisk] {
            d.run_scenario();
        }
        assert_eq!(mem.total_ios(), file.total_ios());

        // Small helper trait so the same scenario drives both backends.
        trait AnyDisk {
            fn run_scenario(&mut self);
        }
        impl<B: StorageBackend> AnyDisk for Disk<B> {
            fn run_scenario(&mut self) {
                let id = self.allocate().unwrap();
                self.read_modify_write(id, |b| b.push(Item::new(1, 2)).unwrap()).unwrap();
                assert_eq!(self.read(id).unwrap().find(1), Some(2));
            }
        }
    }
}
