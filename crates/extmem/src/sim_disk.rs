//! Deterministic crash simulation: a storage environment whose unsynced
//! writes are volatile, driven by a seeded [`FaultPlan`], recording a
//! full I/O trace for replay.
//!
//! ## The machine model
//!
//! A [`SimEnv`] is one simulated machine: named block files (each served
//! through a [`SimDisk`] handle), a small metadata namespace (manifests,
//! markers), an exclusive store lock, and a single global **I/O clock**
//! that every operation ticks. The clock index is the coordinate system
//! of the whole crate: fault plans name indices, the trace records them,
//! and a crash "at index k" means ops `0..k` happened and op `k` did not.
//!
//! Durability is modeled the way the store's own protocol assumes it:
//!
//! * **Block writes are volatile until `sync`.** Each file keeps a
//!   durable image (the state at its last completed sync) plus an
//!   overlay of unsynced writes. Reads see the overlay (a process reads
//!   its own page cache); a crash discards it.
//! * **File growth is durable immediately** (zero-filled slots, exactly
//!   like `FileDisk`'s `set_len` extension — an all-zero slot decodes as
//!   an empty block).
//! * **Metadata ops are atomic and durable at their index.** This is
//!   the contract the store's media layer must honor, not an optimism:
//!   the real directory media fsyncs both the manifest rename and the
//!   clean-marker unlink (a lost unlink would resurrect trust in a
//!   stale manifest — the one direction a lost metadata op is *not*
//!   recoverable).
//! * **At a power cycle**, slots below the synced high-water mark revert
//!   exactly to their durable image, and never-synced slots (allocated
//!   since the last sync) independently keep, lose, or hold a **torn**
//!   image of their unsynced content, chosen by the plan's crash seed —
//!   block-granular write-survival for exactly the slots whose content
//!   no committed manifest may reference.
//!
//! What this deliberately does **not** model is partial survival of
//! unsynced rewrites of previously synced blocks (a power loss tearing
//! the middle of an in-place level merge): the store's guarantees are
//! sync-point guarantees, and its in-place merges rewrite referenced
//! blocks between syncs, so sub-sync write-back reordering is outside
//! the protocol's contract. The torture harness documents that boundary
//! instead of silently assuming it away.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::backend::{PersistentBackend, SlotAllocator, StorageBackend};
use crate::blob::BlobFile;
use crate::block::{Block, BlockId};
use crate::error::{ExtMemError, Result};

/// When and how a [`SimEnv`] fails. All indices are global I/O-clock
/// values (see [`SimEnv::ops`]).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Crash the process model at this I/O index: the op at the index
    /// fails, every later op fails too, and the next
    /// [`SimEnv::power_cycle`] applies the crash write-survival policy.
    pub crash_at: Option<u64>,
    /// Burn the fuse: every op at index ≥ this fails with a transient
    /// [`ExtMemError::Io`] while leaving state intact — the classic
    /// "disk starts erroring" schedule (the shape the fault-injection
    /// suite sweeps).
    pub fail_from: Option<u64>,
    /// Exact indices that fail once with a transient [`ExtMemError::Io`]
    /// (the op does not take effect; later ops proceed normally).
    pub fail_at: Vec<u64>,
    /// Seeds the write-survival lottery for never-synced slots at the
    /// power cycle following a crash.
    pub crash_seed: u64,
    /// Allow torn images (half new bytes, half garbage) among the
    /// never-synced slots that the lottery lets survive.
    pub tear: bool,
}

impl FaultPlan {
    /// A plan that crashes at I/O index `k`, with write survival driven
    /// by `seed` and torn blocks enabled.
    pub fn crash(k: u64, seed: u64) -> Self {
        FaultPlan { crash_at: Some(k), crash_seed: seed, tear: true, ..Default::default() }
    }
}

/// One recorded I/O operation. Traces of two runs with the same seed and
/// workload compare equal event-for-event — byte content is folded into
/// `fingerprint` fields so equality is content-sensitive without storing
/// every image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoEvent {
    /// A block read.
    Read {
        /// File the block lives in.
        file: String,
        /// Slot index.
        id: u64,
    },
    /// A block write; `fingerprint` folds the encoded bytes.
    Write {
        /// File the block lives in.
        file: String,
        /// Slot index.
        id: u64,
        /// FNV-1a of the encoded block image.
        fingerprint: u64,
    },
    /// An allocation of `n` consecutive slots starting at `base`.
    Alloc {
        /// File the slots live in.
        file: String,
        /// First allocated slot.
        base: u64,
        /// Number of slots.
        n: u64,
    },
    /// A slot returned to the allocator.
    Free {
        /// File the slot lives in.
        file: String,
        /// Slot index.
        id: u64,
    },
    /// A sync barrier: `flushed` overlay entries became durable.
    Sync {
        /// File that was synced.
        file: String,
        /// Unsynced writes made durable by this barrier.
        flushed: u64,
    },
    /// A metadata operation (manifest commit, marker write/clear, file
    /// create/open/remove, lock acquisition, power cycle).
    Meta {
        /// What happened, e.g. `"manifest-write MANIFEST"`.
        label: String,
        /// Content fingerprint where meaningful, 0 otherwise.
        fingerprint: u64,
    },
}

/// FNV-1a over `bytes` — the content fold used by trace fingerprints
/// (exported so downstream fingerprints stay comparable to the trace's).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 step — drives the crash write-survival lottery without
/// pulling a hash-crate dependency into the substrate.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One simulated block file: durable image + unsynced overlay.
struct SimFileState {
    block_bytes: usize,
    block_capacity: usize,
    /// High-water mark (growth is durable immediately, zero-filled).
    slots: u64,
    /// High-water mark at the last completed sync: slots at or above it
    /// have never held synced content, so the crash lottery may keep,
    /// drop, or tear their unsynced images.
    synced_slots: u64,
    /// Synced images by slot (absent = zeros = empty block).
    durable: BTreeMap<u64, Vec<u8>>,
    /// Unsynced writes by slot; discarded (modulo the lottery) at crash.
    overlay: BTreeMap<u64, Vec<u8>>,
}

/// One simulated append-only blob file: a durable prefix plus the
/// unsynced appends made since the last sync barrier, kept append-
/// granular so the crash lottery can keep a *prefix* of them (appends
/// reach the platter in order) and tear the first casualty.
struct SimBlobState {
    /// Bytes durable as of the last completed sync.
    durable: Vec<u8>,
    /// Unsynced appends, in order; discarded (modulo the prefix-survival
    /// lottery) at a crash.
    tail: Vec<Vec<u8>>,
}

impl SimBlobState {
    fn visible_len(&self) -> u64 {
        self.durable.len() as u64 + self.tail.iter().map(|t| t.len() as u64).sum::<u64>()
    }
}

/// The machine behind a [`SimEnv`] handle.
struct SimEnvState {
    clock: u64,
    plan: FaultPlan,
    crashed: bool,
    tracing: bool,
    trace: Vec<IoEvent>,
    files: BTreeMap<String, SimFileState>,
    blobs: BTreeMap<String, SimBlobState>,
    meta: BTreeMap<String, Vec<u8>>,
    /// Held store locks by name (`""` is the machine's default store; a
    /// sharded service locks one name per shard), each mapped to the
    /// epoch of its current acquisition.
    locks: BTreeMap<String, u64>,
    /// Monotone acquisition counter: each successful [`SimEnv::lock`]
    /// stamps the owner with a fresh epoch, so a stale handle released
    /// after a power cycle cannot free a newer owner's lock.
    lock_epoch: u64,
    power_cycles: u64,
}

/// A handle to one simulated machine; cheap to clone, and every clone
/// sees the same state — the harness keeps one while a store owns
/// another, exactly like a file system outliving a process.
#[derive(Clone)]
pub struct SimEnv(Arc<Mutex<SimEnvState>>);

impl Default for SimEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl SimEnv {
    /// A fresh machine: empty namespace, fault-free plan, clock at 0.
    pub fn new() -> Self {
        SimEnv(Arc::new(Mutex::new(SimEnvState {
            clock: 0,
            plan: FaultPlan::default(),
            crashed: false,
            tracing: true,
            trace: Vec::new(),
            files: BTreeMap::new(),
            blobs: BTreeMap::new(),
            meta: BTreeMap::new(),
            locks: BTreeMap::new(),
            lock_epoch: 0,
            power_cycles: 0,
        })))
    }

    fn state(&self) -> std::sync::MutexGuard<'_, SimEnvState> {
        self.0.lock().expect("sim env mutex poisoned")
    }

    /// Installs `plan`; indices are absolute clock values (see
    /// [`SimEnv::ops`] for the current position).
    pub fn set_plan(&self, plan: FaultPlan) {
        self.state().plan = plan;
    }

    /// The I/O clock: how many operations have been attempted so far.
    pub fn ops(&self) -> u64 {
        self.state().clock
    }

    /// Convenience: burn the fuse after `okay` further successful
    /// operations — [`FaultPlan::fail_from`] anchored at the current
    /// clock, preserving the rest of the installed plan.
    pub fn fail_after(&self, okay: u64) {
        let mut st = self.state();
        st.plan.fail_from = Some(st.clock.saturating_add(okay));
    }

    /// Whether the plan's crash point has fired (every op fails until
    /// [`SimEnv::power_cycle`]).
    pub fn crashed(&self) -> bool {
        self.state().crashed
    }

    /// Enables or disables trace recording (on by default).
    pub fn set_tracing(&self, on: bool) {
        self.state().tracing = on;
    }

    /// Drains and returns the recorded trace.
    pub fn take_trace(&self) -> Vec<IoEvent> {
        std::mem::take(&mut self.state().trace)
    }

    /// Simulates the machine coming back up after a crash: applies the
    /// block-granular write-survival policy (slots below each file's
    /// synced high-water mark revert exactly to their durable image;
    /// never-synced slots keep, lose, or hold a torn copy of their
    /// unsynced content, chosen by the plan's `crash_seed`), clears the
    /// crash flag and the store lock (the kernel releases a dead
    /// process's lock), and resets the plan to fault-free so recovery
    /// runs clean. The I/O clock and the trace carry on — a replay is
    /// one timeline.
    pub fn power_cycle(&self) {
        let mut st = self.state();
        let st = &mut *st;
        let plan = std::mem::take(&mut st.plan);
        let mut rng = plan.crash_seed ^ st.power_cycles.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for file in st.files.values_mut() {
            let overlay = std::mem::take(&mut file.overlay);
            for (id, bytes) in overlay {
                if id < file.synced_slots {
                    // Synced content survives exactly; the unsynced
                    // rewrite is dropped whole.
                    continue;
                }
                match splitmix_next(&mut rng) % 3 {
                    0 => {
                        // The write-back cache got this one out whole.
                        file.durable.insert(id, bytes);
                    }
                    1 if plan.tear => {
                        // Torn mid-block: half the new bytes, garbage
                        // tail. No committed manifest references a
                        // never-synced slot, so recovery must never
                        // need to decode this.
                        let mut torn = bytes;
                        let half = torn.len() / 2;
                        for b in &mut torn[half..] {
                            *b = 0xFF;
                        }
                        file.durable.insert(id, torn);
                    }
                    _ => {} // dropped: the slot reads back as zeros
                }
            }
        }
        for blob in st.blobs.values_mut() {
            // Appends reach the platter in order, so survival is
            // prefix-shaped: each unsynced append in turn survives
            // whole, tears (half its bytes then garbage — the last
            // write the head got to), or is lost — and the first
            // casualty ends the prefix.
            let tail = std::mem::take(&mut blob.tail);
            for bytes in tail {
                match splitmix_next(&mut rng) % 3 {
                    0 => blob.durable.extend_from_slice(&bytes),
                    1 if plan.tear => {
                        let half = bytes.len() / 2;
                        blob.durable.extend_from_slice(&bytes[..half]);
                        blob.durable.extend(std::iter::repeat_n(0xFF, bytes.len() - half));
                        break;
                    }
                    _ => break,
                }
            }
        }
        st.crashed = false;
        st.locks.clear();
        st.power_cycles += 1;
        if st.tracing {
            st.trace
                .push(IoEvent::Meta { label: "power-cycle".into(), fingerprint: st.power_cycles });
        }
    }

    /// Acquires the machine's default store lock (one I/O op) and
    /// returns this acquisition's epoch. Errors while another live
    /// handle holds it — the simulated twin of the directory `LOCK`'s
    /// fail-fast behavior. Release with [`SimEnv::unlock`], quoting the
    /// epoch.
    pub fn lock(&self) -> Result<u64> {
        self.lock_named("")
    }

    /// [`SimEnv::lock`] for the store named `name`: one machine hosts
    /// many independent stores (a sharded service locks one name per
    /// shard), each with its own fail-fast exclusive lock. Release with
    /// [`SimEnv::unlock_named`], quoting the name and epoch.
    pub fn lock_named(&self, name: &str) -> Result<u64> {
        self.guarded(
            || IoEvent::Meta { label: format!("lock {name}"), fingerprint: 0 },
            |st| {
                if st.locks.contains_key(name) {
                    return Err(ExtMemError::BadConfig(format!(
                        "sim store {name:?} is locked by a live handle (drop it, or \
                         power-cycle after a crash)"
                    )));
                }
                st.lock_epoch += 1;
                st.locks.insert(name.to_string(), st.lock_epoch);
                Ok(st.lock_epoch)
            },
        )
    }

    /// Releases the default store lock **if** `epoch` still names the
    /// current acquisition. Infallible and un-clocked: the kernel
    /// releases a dead process's lock without that process doing I/O.
    /// The epoch check makes the release owner-scoped, like an OS lock
    /// dying with its own descriptor: a crashed handle dropped *after* a
    /// power cycle (which already released the lock) must not free a
    /// newer owner's acquisition.
    pub fn unlock(&self, epoch: u64) {
        self.unlock_named("", epoch);
    }

    /// [`SimEnv::unlock`] for the store named `name`.
    pub fn unlock_named(&self, name: &str, epoch: u64) {
        let mut st = self.state();
        if st.locks.get(name) == Some(&epoch) {
            st.locks.remove(name);
        }
    }

    /// Reads metadata file `name` (one I/O op); `None` when absent.
    pub fn meta_read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        self.guarded(
            || IoEvent::Meta { label: format!("meta-read {name}"), fingerprint: 0 },
            |st| Ok(st.meta.get(name).cloned()),
        )
    }

    /// Atomically writes metadata file `name` (one I/O op, durable at
    /// its index — the simulated fsync'd tmp-plus-rename).
    pub fn meta_write(&self, name: &str, bytes: &[u8]) -> Result<()> {
        // The fold is allocation-free, so computing it eagerly costs
        // nothing an untraced run needs to avoid; only the event's
        // String is deferred.
        let fp = fnv1a64(bytes);
        let owned = bytes.to_vec();
        self.guarded(
            || IoEvent::Meta { label: format!("meta-write {name}"), fingerprint: fp },
            move |st| {
                st.meta.insert(name.to_string(), owned);
                Ok(())
            },
        )
    }

    /// Removes metadata file `name` (one I/O op; absent is not an error,
    /// matching `remove_file` + `NotFound` tolerance on the real path).
    pub fn meta_remove(&self, name: &str) -> Result<()> {
        self.guarded(
            || IoEvent::Meta { label: format!("meta-remove {name}"), fingerprint: 0 },
            |st| {
                st.meta.remove(name);
                Ok(())
            },
        )
    }

    /// Creates (truncating) block file `name` and returns a handle to it
    /// (one I/O op).
    pub fn create_disk(&self, name: &str, block_capacity: usize) -> Result<SimDisk> {
        assert!(block_capacity > 0, "block capacity must be positive");
        let block_bytes = Block::encoded_len(block_capacity);
        self.guarded(
            || IoEvent::Meta { label: format!("file-create {name}"), fingerprint: 0 },
            |st| {
                st.files.insert(
                    name.to_string(),
                    SimFileState {
                        block_bytes,
                        block_capacity,
                        slots: 0,
                        synced_slots: 0,
                        durable: BTreeMap::new(),
                        overlay: BTreeMap::new(),
                    },
                );
                Ok(())
            },
        )?;
        Ok(SimDisk::handle(self.clone(), name, block_capacity, 0))
    }

    /// Opens existing block file `name` **without truncating**; every
    /// slot is initially live, exactly like `FileDisk::open` (one I/O
    /// op). Restore the persisted free list to resume allocation.
    pub fn open_disk(&self, name: &str, block_capacity: usize) -> Result<SimDisk> {
        assert!(block_capacity > 0, "block capacity must be positive");
        let slots = self.guarded(
            || IoEvent::Meta { label: format!("file-open {name}"), fingerprint: 0 },
            |st| match st.files.get(name) {
                Some(f) if f.block_capacity == block_capacity => Ok(f.slots),
                Some(f) => Err(ExtMemError::BadConfig(format!(
                    "sim file {name} was created with block capacity {}, caller asked for \
                     {block_capacity}",
                    f.block_capacity
                ))),
                None => Err(ExtMemError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("sim file {name} does not exist"),
                ))),
            },
        )?;
        Ok(SimDisk::handle(self.clone(), name, block_capacity, slots))
    }

    /// Removes block file `name` (one I/O op; absent is not an error).
    pub fn remove_file(&self, name: &str) -> Result<()> {
        self.guarded(
            || IoEvent::Meta { label: format!("file-remove {name}"), fingerprint: 0 },
            |st| {
                st.files.remove(name);
                Ok(())
            },
        )
    }

    /// Names of the block files currently in the namespace (diagnostic
    /// listing, un-clocked).
    pub fn file_names(&self) -> Vec<String> {
        self.state().files.keys().cloned().collect()
    }

    /// Size in bytes file `name` would report to a `stat` (slots × slot
    /// size); 0 when absent. Un-clocked diagnostic.
    pub fn file_len(&self, name: &str) -> u64 {
        let st = self.state();
        st.files.get(name).map_or(0, |f| f.slots * f.block_bytes as u64)
    }

    /// Creates (truncating) append-only blob file `name` and returns a
    /// handle to it (one I/O op) — the blob-file namespace every
    /// torture/crash sweep drives, so torn appends are covered by the
    /// same fault plans as block files.
    pub fn create_blob(&self, name: &str) -> Result<SimBlob> {
        self.guarded(
            || IoEvent::Meta { label: format!("file-create {name}"), fingerprint: 0 },
            |st| {
                st.blobs.insert(
                    name.to_string(),
                    SimBlobState { durable: Vec::new(), tail: Vec::new() },
                );
                Ok(())
            },
        )?;
        Ok(SimBlob { env: self.clone(), name: name.to_string() })
    }

    /// Opens existing blob file `name` without truncating (one I/O op).
    pub fn open_blob(&self, name: &str) -> Result<SimBlob> {
        self.guarded(
            || IoEvent::Meta { label: format!("file-open {name}"), fingerprint: 0 },
            |st| match st.blobs.get(name) {
                Some(_) => Ok(()),
                None => Err(ExtMemError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("sim blob {name} does not exist"),
                ))),
            },
        )?;
        Ok(SimBlob { env: self.clone(), name: name.to_string() })
    }

    /// Removes blob file `name` (one I/O op; absent is not an error).
    pub fn remove_blob(&self, name: &str) -> Result<()> {
        self.guarded(
            || IoEvent::Meta { label: format!("file-remove {name}"), fingerprint: 0 },
            |st| {
                st.blobs.remove(name);
                Ok(())
            },
        )
    }

    /// Names of the blob files currently in the namespace (diagnostic
    /// listing, un-clocked).
    pub fn blob_names(&self) -> Vec<String> {
        self.state().blobs.keys().cloned().collect()
    }

    /// Visible length of blob `name` in bytes (durable prefix plus
    /// unsynced appends — what a `stat` from this process sees); 0 when
    /// absent. Un-clocked diagnostic.
    pub fn blob_len(&self, name: &str) -> u64 {
        self.state().blobs.get(name).map_or(0, |b| b.visible_len())
    }

    /// Appends `bytes` to blob `name` (one I/O op, volatile until
    /// [`SimEnv::blob_sync`]). The trace records it as a `Write` whose
    /// `id` is the append's byte offset.
    pub fn blob_append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let fp = fnv1a64(bytes);
        let owned = bytes.to_vec();
        // The event is built before the apply closure runs (same pattern
        // as the sync barrier's flushed count): peek the offset up front.
        let offset = self.state().blobs.get(name).map_or(0, |b| b.visible_len());
        self.guarded(
            || IoEvent::Write { file: name.to_string(), id: offset, fingerprint: fp },
            move |st| {
                let b = st
                    .blobs
                    .get_mut(name)
                    .ok_or_else(|| ExtMemError::Corrupt(format!("sim blob {name} vanished")))?;
                b.tail.push(owned);
                Ok(())
            },
        )
    }

    /// Sync barrier for blob `name` (one I/O op): every prior append
    /// becomes durable.
    pub fn blob_sync(&self, name: &str) -> Result<()> {
        let flushed = {
            let st = self.state();
            st.blobs.get(name).map_or(0, |b| b.tail.len() as u64)
        };
        self.guarded(
            || IoEvent::Sync { file: name.to_string(), flushed },
            |st| {
                let b = st
                    .blobs
                    .get_mut(name)
                    .ok_or_else(|| ExtMemError::Corrupt(format!("sim blob {name} vanished")))?;
                for chunk in b.tail.drain(..) {
                    b.durable.extend_from_slice(&chunk);
                }
                Ok(())
            },
        )
    }

    /// Reads the whole of blob `name` (one I/O op) — a process reads its
    /// own unsynced appends, so the image is durable prefix + tail.
    pub fn blob_read_all(&self, name: &str) -> Result<Vec<u8>> {
        self.guarded(
            || IoEvent::Meta { label: format!("blob-read {name}"), fingerprint: 0 },
            |st| {
                let b = st
                    .blobs
                    .get(name)
                    .ok_or_else(|| ExtMemError::Corrupt(format!("sim blob {name} vanished")))?;
                let mut out = b.durable.clone();
                for chunk in &b.tail {
                    out.extend_from_slice(chunk);
                }
                Ok(out)
            },
        )
    }

    /// Truncates blob `name` to `len` visible bytes (one I/O op) —
    /// recovery's crash-tail discard. Truncating into the durable prefix
    /// is itself durable (like `set_len`); a cut inside the unsynced
    /// tail trims the volatile appends.
    pub fn blob_truncate(&self, name: &str, len: u64) -> Result<()> {
        self.guarded(
            || IoEvent::Meta { label: format!("blob-truncate {name}"), fingerprint: len },
            |st| {
                let b = st
                    .blobs
                    .get_mut(name)
                    .ok_or_else(|| ExtMemError::Corrupt(format!("sim blob {name} vanished")))?;
                let durable_len = b.durable.len() as u64;
                if len <= durable_len {
                    b.durable.truncate(len as usize);
                    b.tail.clear();
                } else {
                    let mut keep = len - durable_len;
                    let mut trimmed = Vec::new();
                    for chunk in b.tail.drain(..) {
                        if keep == 0 {
                            break;
                        }
                        let take = (chunk.len() as u64).min(keep) as usize;
                        keep -= take as u64;
                        trimmed.push(chunk[..take].to_vec());
                    }
                    b.tail = trimmed;
                }
                Ok(())
            },
        )
    }

    /// The clock-tick-plus-fault-check wrapper every operation goes
    /// through: assigns the op its index, consults the plan, applies
    /// `apply` on success, and records the event. `event` is a closure
    /// so untraced runs (the exhaustive sweeps) pay no per-op String
    /// allocation for events that would be dropped anyway.
    fn guarded<T>(
        &self,
        event: impl FnOnce() -> IoEvent,
        apply: impl FnOnce(&mut SimEnvState) -> Result<T>,
    ) -> Result<T> {
        let mut st = self.state();
        let st = &mut *st;
        if st.crashed {
            return Err(ExtMemError::Io(std::io::Error::other(
                "simulated machine is down (crash point already fired)",
            )));
        }
        let idx = st.clock;
        st.clock += 1;
        if st.plan.crash_at == Some(idx) {
            st.crashed = true;
            return Err(ExtMemError::Io(std::io::Error::other(format!(
                "simulated crash at I/O index {idx}"
            ))));
        }
        if st.plan.fail_from.is_some_and(|from| idx >= from) {
            return Err(ExtMemError::Io(std::io::Error::other(format!(
                "injected fault (fuse burnt, I/O index {idx})"
            ))));
        }
        if st.plan.fail_at.contains(&idx) {
            return Err(ExtMemError::Io(std::io::Error::other(format!(
                "injected transient fault at I/O index {idx}"
            ))));
        }
        let out = apply(st)?;
        if st.tracing {
            st.trace.push(event());
        }
        Ok(out)
    }
}

/// A crash-simulation storage backend: block I/O against one named file
/// of a [`SimEnv`], with `FileDisk`-identical allocator policy (LIFO
/// recycling, lowest-first-fit contiguous runs, deferred-recycling
/// quarantine) so block ids stay backend-deterministic.
///
/// The allocator state lives in the handle — exactly as `FileDisk` keeps
/// it in process memory — so a crash (dropping the handle) loses it, and
/// recovery must rebuild it from persisted metadata or a region walk.
pub struct SimDisk {
    env: SimEnv,
    file: String,
    block_capacity: usize,
    block_bytes: usize,
    /// The shared allocator state machine — the same implementation
    /// `FileDisk` runs, so the torture harness certifies crash-safety of
    /// exactly the allocator the real store uses. Kept in the handle
    /// (not the env), exactly as `FileDisk` keeps it in process memory:
    /// a crash loses it, and recovery rebuilds it from persisted
    /// metadata or a region walk. Its high-water mark stays in step with
    /// the file's, which this handle alone mutates while it lives.
    alloc: SlotAllocator,
}

impl SimDisk {
    /// A standalone disk on a fresh private [`SimEnv`] — the drop-in
    /// replacement for an in-memory test backend when the test wants a
    /// fault schedule (configure it via [`SimDisk::env`]).
    pub fn new(block_capacity: usize) -> Self {
        SimEnv::new().create_disk("sim.blk", block_capacity).expect("fresh env cannot fault")
    }

    fn handle(env: SimEnv, file: &str, block_capacity: usize, slots: u64) -> Self {
        SimDisk {
            env,
            file: file.to_string(),
            block_capacity,
            block_bytes: Block::encoded_len(block_capacity),
            alloc: SlotAllocator::with_all_live(slots),
        }
    }

    /// The environment this disk lives in (fault plan, clock, trace).
    pub fn env(&self) -> SimEnv {
        self.env.clone()
    }

    fn check_live(&self, id: BlockId) -> Result<()> {
        if self.alloc.is_dead(id.raw()) {
            return Err(ExtMemError::BadBlockId(id));
        }
        Ok(())
    }

    /// Runs `apply` against this disk's file under the environment's
    /// clock-and-fault guard.
    fn file_op<T>(
        &self,
        event: impl FnOnce() -> IoEvent,
        apply: impl FnOnce(&mut SimFileState) -> Result<T>,
    ) -> Result<T> {
        let name = &self.file;
        self.env.guarded(event, |st| {
            let f = st
                .files
                .get_mut(name)
                .ok_or_else(|| ExtMemError::Corrupt(format!("sim file {name} vanished")))?;
            apply(f)
        })
    }
}

impl StorageBackend for SimDisk {
    fn block_capacity(&self) -> usize {
        self.block_capacity
    }

    fn read(&mut self, id: BlockId) -> Result<Block> {
        self.check_live(id)?;
        let cap = self.block_capacity;
        self.file_op(
            || IoEvent::Read { file: self.file.clone(), id: id.raw() },
            |f| {
                match f.overlay.get(&id.raw()).or_else(|| f.durable.get(&id.raw())) {
                    Some(bytes) => Block::decode_from(cap, bytes),
                    // Absent image = zero-filled slot = a valid empty block.
                    None => Ok(Block::new(cap)),
                }
            },
        )
    }

    fn write(&mut self, id: BlockId, block: &Block) -> Result<()> {
        self.check_live(id)?;
        debug_assert_eq!(block.capacity(), self.block_capacity);
        let mut buf = vec![0u8; self.block_bytes];
        block.encode_into(&mut buf);
        // Allocation-free fold, computed eagerly; the event String is
        // deferred to traced runs.
        let fp = fnv1a64(&buf);
        self.file_op(
            || IoEvent::Write { file: self.file.clone(), id: id.raw(), fingerprint: fp },
            move |f| {
                f.overlay.insert(id.raw(), buf);
                Ok(())
            },
        )
    }

    fn allocate(&mut self) -> Result<BlockId> {
        let idx = match self.alloc.peek_recycle() {
            Some(idx) => {
                // Recycled slot: reset the stale image (a volatile write,
                // like FileDisk's header reset) *before* the allocator
                // state changes, so a faulted op leaves the slot safely
                // on the free list.
                let zeros = vec![0u8; self.block_bytes];
                self.file_op(
                    || IoEvent::Alloc { file: self.file.clone(), base: idx, n: 1 },
                    move |f| {
                        f.overlay.insert(idx, zeros);
                        Ok(())
                    },
                )?;
                self.alloc.commit_recycle(idx);
                idx
            }
            None => {
                let idx = self.alloc.slots();
                self.file_op(
                    || IoEvent::Alloc { file: self.file.clone(), base: idx, n: 1 },
                    |f| {
                        // Growth is durable immediately (zero-filled).
                        f.slots = idx + 1;
                        Ok(())
                    },
                )?;
                self.alloc.commit_grow(1)
            }
        };
        Ok(BlockId(idx))
    }

    fn allocate_contiguous(&mut self, n: usize) -> Result<BlockId> {
        // Identical recycling policy to FileDisk/MemDisk: the lowest
        // committed free run of ≥ n wins, reset by one (volatile) zero
        // fill; otherwise grow.
        if let Some(base) = self.alloc.peek_run(n) {
            let end = base + n as u64;
            let bytes = self.block_bytes;
            self.file_op(
                || IoEvent::Alloc { file: self.file.clone(), base, n: n as u64 },
                move |f| {
                    for id in base..end {
                        f.overlay.insert(id, vec![0u8; bytes]);
                    }
                    Ok(())
                },
            )?;
            self.alloc.commit_run(base, n);
            return Ok(BlockId(base));
        }
        let base = self.alloc.slots();
        let new_slots = base + n as u64;
        self.file_op(
            || IoEvent::Alloc { file: self.file.clone(), base, n: n as u64 },
            |f| {
                f.slots = new_slots;
                Ok(())
            },
        )?;
        Ok(BlockId(self.alloc.commit_grow(n as u64)))
    }

    fn free(&mut self, id: BlockId) -> Result<()> {
        self.check_live(id)?;
        self.file_op(|| IoEvent::Free { file: self.file.clone(), id: id.raw() }, |_| Ok(()))?;
        self.alloc.release(id.raw());
        Ok(())
    }

    fn live_blocks(&self) -> u64 {
        self.alloc.live()
    }

    fn sync(&mut self) -> Result<()> {
        // The event is built before the apply closure runs, so read the
        // about-to-be-flushed count up front (nothing else can touch the
        // overlay between the peek and the barrier — the handle is the
        // file's only writer).
        let flushed = {
            let st = self.env.state();
            st.files.get(&self.file).map_or(0, |f| f.overlay.len() as u64)
        };
        self.file_op(
            || IoEvent::Sync { file: self.file.clone(), flushed },
            |f| {
                let overlay = std::mem::take(&mut f.overlay);
                for (id, bytes) in overlay {
                    f.durable.insert(id, bytes);
                }
                f.synced_slots = f.slots;
                Ok(())
            },
        )
    }
}

/// The persistence surface — the same protocol as `FileDisk`'s inherent
/// methods, so a store generic over [`PersistentBackend`] behaves
/// identically on both.
impl PersistentBackend for SimDisk {
    fn slots(&self) -> u64 {
        self.alloc.slots()
    }

    fn free_list(&self) -> Vec<u64> {
        self.alloc.free_list()
    }

    fn free_count(&self) -> usize {
        self.alloc.free_count()
    }

    fn set_defer_recycling(&mut self, defer: bool) {
        self.alloc.set_defer_recycling(defer);
    }

    fn commit_frees(&mut self) {
        self.alloc.commit_frees();
    }

    fn restore_free_list(&mut self, free: Vec<u64>) -> Result<()> {
        self.alloc.restore_free_list(free)
    }
}

/// A handle to one named blob file of a [`SimEnv`] — the crash-faithful
/// [`BlobFile`] a `BlobLog` runs on under torture: appends are volatile
/// until sync, and a power cycle applies the prefix-survival lottery
/// (keep / tear / drop) to the unsynced tail.
pub struct SimBlob {
    env: SimEnv,
    name: String,
}

impl SimBlob {
    /// The environment this blob lives in (fault plan, clock, trace).
    pub fn env(&self) -> SimEnv {
        self.env.clone()
    }
}

impl BlobFile for SimBlob {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.env.blob_append(&self.name, bytes)
    }

    fn sync(&mut self) -> Result<()> {
        self.env.blob_sync(&self.name)
    }

    fn len(&self) -> u64 {
        self.env.blob_len(&self.name)
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        self.env.blob_read_all(&self.name)
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.env.blob_truncate(&self.name, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    fn item_block(cap: usize, k: u64, v: u64) -> Block {
        let mut b = Block::new(cap);
        b.push(Item::new(k, v)).unwrap();
        b
    }

    #[test]
    fn round_trip_and_allocator_mirror_file_disk() {
        let mut d = SimDisk::new(4);
        let a = d.allocate().unwrap();
        let blk = d.read(a).unwrap();
        assert!(blk.is_empty());
        d.write(a, &item_block(4, 7, 70)).unwrap();
        assert_eq!(d.read(a).unwrap().find(7), Some(70));
        d.free(a).unwrap();
        assert!(d.read(a).is_err());
        let b = d.allocate().unwrap();
        assert_eq!(a, b, "LIFO recycling");
        assert!(d.read(b).unwrap().is_empty(), "recycled slot reads empty");
    }

    #[test]
    fn unsynced_writes_vanish_at_a_power_cycle_synced_ones_survive() {
        let env = SimEnv::new();
        let mut d = env.create_disk("t.blk", 4).unwrap();
        let a = d.allocate().unwrap();
        d.write(a, &item_block(4, 1, 10)).unwrap();
        d.sync().unwrap();
        d.write(a, &item_block(4, 1, 99)).unwrap(); // unsynced rewrite
        env.set_plan(FaultPlan::crash(env.ops(), 42));
        assert!(d.read(a).is_err(), "crash point fires");
        env.power_cycle();
        let mut d = env.open_disk("t.blk", 4).unwrap();
        assert_eq!(d.read(a).unwrap().find(1), Some(10), "synced image survives exactly");
    }

    #[test]
    fn never_synced_slots_survive_the_lottery_but_synced_reads_never_tear() {
        // Allocate past the synced high-water mark, write, crash: the
        // torn/kept/dropped lottery only touches those slots; slots
        // below the mark revert exactly.
        let env = SimEnv::new();
        let mut d = env.create_disk("t.blk", 4).unwrap();
        let synced = d.allocate().unwrap();
        d.write(synced, &item_block(4, 5, 50)).unwrap();
        d.sync().unwrap();
        let fresh: Vec<_> = (0..20).map(|_| d.allocate().unwrap()).collect();
        for (i, &id) in fresh.iter().enumerate() {
            d.write(id, &item_block(4, i as u64, 1)).unwrap();
        }
        d.write(synced, &item_block(4, 5, 999)).unwrap();
        env.set_plan(FaultPlan::crash(env.ops(), 7));
        assert!(d.sync().is_err(), "crash fires at the sync");
        env.power_cycle();
        let mut d = env.open_disk("t.blk", 4).unwrap();
        assert_eq!(d.read(synced).unwrap().find(5), Some(50), "synced slot reverted exactly");
        // Never-synced slots hold zeros, the written image, or torn
        // garbage — all three must be *readable or cleanly erroring*,
        // never panicking.
        let mut kept = 0;
        let mut dropped = 0;
        let mut torn = 0;
        for &id in &fresh {
            match d.read(id) {
                Ok(blk) if blk.is_empty() => dropped += 1,
                Ok(_) => kept += 1,
                Err(ExtMemError::Corrupt(_)) => torn += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(kept + dropped + torn, fresh.len());
        assert!(kept > 0 && dropped > 0, "lottery mixes outcomes: {kept}/{dropped}/{torn}");
    }

    #[test]
    fn fuse_schedule_matches_failing_disk_semantics() {
        let mut d = SimDisk::new(4);
        let env = d.env();
        env.fail_after(3);
        let id = d.allocate().unwrap(); // 1
        let _ = d.read(id).unwrap(); // 2
        d.write(id, &Block::new(4)).unwrap(); // 3 — fuse burnt
        assert!(matches!(d.read(id), Err(ExtMemError::Io(_))));
        assert!(matches!(d.allocate(), Err(ExtMemError::Io(_))));
        assert!(matches!(d.sync(), Err(ExtMemError::Io(_))));
    }

    #[test]
    fn transient_fault_leaves_state_intact_and_heals() {
        let mut d = SimDisk::new(4);
        let env = d.env();
        let id = d.allocate().unwrap();
        d.write(id, &item_block(4, 3, 30)).unwrap();
        env.set_plan(FaultPlan { fail_at: vec![env.ops()], ..Default::default() });
        assert!(matches!(d.read(id), Err(ExtMemError::Io(_))), "scheduled index faults once");
        assert_eq!(d.read(id).unwrap().find(3), Some(30), "next op heals, data intact");
    }

    #[test]
    fn trace_is_deterministic_and_content_sensitive() {
        let run = |value: u64| {
            let env = SimEnv::new();
            let mut d = env.create_disk("t.blk", 4).unwrap();
            let id = d.allocate().unwrap();
            d.write(id, &item_block(4, 1, value)).unwrap();
            d.sync().unwrap();
            env.take_trace()
        };
        assert_eq!(run(10), run(10), "same workload, identical trace");
        assert_ne!(run(10), run(11), "different written bytes, different fingerprints");
        assert!(
            run(10).iter().any(|e| matches!(e, IoEvent::Sync { flushed, .. } if *flushed == 1)),
            "the sync barrier records how many writes it made durable"
        );
    }

    #[test]
    fn lock_excludes_second_holder_until_power_cycle() {
        let env = SimEnv::new();
        let stale = env.lock().unwrap();
        assert!(env.lock().is_err(), "second live handle fails fast");
        env.power_cycle();
        let owned = env.lock().unwrap();
        // The pre-power-cycle epoch is dead: releasing it must not free
        // the new owner's lock.
        env.unlock(stale);
        assert!(env.lock().is_err(), "stale epoch cannot steal the lock");
        env.unlock(owned);
        env.lock().unwrap();
    }

    #[test]
    fn meta_files_round_trip_and_survive_crash() {
        let env = SimEnv::new();
        env.meta_write("MANIFEST", b"v1").unwrap();
        env.set_plan(FaultPlan::crash(env.ops() + 1, 0));
        env.meta_write("CLEAN", b"clean").unwrap();
        assert!(env.meta_write("MANIFEST", b"v2").is_err(), "crash point blocks the commit");
        env.power_cycle();
        assert_eq!(env.meta_read("MANIFEST").unwrap().as_deref(), Some(&b"v1"[..]));
        assert_eq!(env.meta_read("CLEAN").unwrap().as_deref(), Some(&b"clean"[..]));
        env.meta_remove("CLEAN").unwrap();
        assert_eq!(env.meta_read("CLEAN").unwrap(), None);
    }

    #[test]
    fn deferred_recycling_quarantines_until_commit() {
        let mut d = SimDisk::new(2);
        d.set_defer_recycling(true);
        let a = d.allocate().unwrap();
        d.write(a, &item_block(2, 5, 50)).unwrap();
        d.free(a).unwrap();
        assert!(d.read(a).is_err());
        let b = d.allocate().unwrap();
        assert_ne!(a, b, "quarantined slot must not be recycled");
        assert_eq!(d.free_list(), vec![a.raw()]);
        d.commit_frees();
        let c = d.allocate().unwrap();
        assert_eq!(a, c, "committed slot is recyclable");
    }

    #[test]
    fn contiguous_runs_recycle_identically_to_file_disk() {
        let mut d = SimDisk::new(2);
        let _anchor = d.allocate().unwrap();
        let ids: Vec<_> = (0..6).map(|_| d.allocate().unwrap()).collect();
        for &i in &[3usize, 1, 5, 2, 4] {
            d.free(ids[i]).unwrap();
        }
        let base = d.allocate_contiguous(5).unwrap();
        assert_eq!(base, ids[1], "the coalesced run is recycled, not the device grown");
        assert_eq!(PersistentBackend::slots(&d), 7, "no growth");
        for k in 0..5 {
            assert!(d.read(BlockId(base.raw() + k)).unwrap().is_empty());
        }
    }

    #[test]
    fn restore_free_list_rejects_bad_ids() {
        let mut d = SimDisk::new(2);
        let _ = d.allocate().unwrap();
        assert!(d.restore_free_list(vec![5]).is_err(), "out of range");
        assert!(d.restore_free_list(vec![0, 0]).is_err(), "duplicate");
        assert!(d.restore_free_list(vec![0]).is_ok());
    }

    #[test]
    fn blob_appends_are_volatile_until_sync() {
        let env = SimEnv::new();
        let mut b = env.create_blob("t.blob").unwrap();
        b.append(b"synced").unwrap();
        b.sync().unwrap();
        b.append(b" unsynced").unwrap();
        assert_eq!(b.len(), 15, "a process sees its own appends");
        env.set_plan(FaultPlan::crash(env.ops(), 3));
        assert!(b.append(b"x").is_err(), "crash point fires");
        env.power_cycle();
        let mut b = env.open_blob("t.blob").unwrap();
        assert_eq!(&b.read_all().unwrap()[..6], b"synced", "durable prefix survives exactly");
    }

    #[test]
    fn blob_crash_survival_is_prefix_shaped() {
        // Many unsynced appends, then a crash: whatever survives must be
        // a prefix of the append sequence — a later append never lands
        // without every earlier one (appends hit the platter in order).
        for seed in 0..16u64 {
            let env = SimEnv::new();
            let mut b = env.create_blob("t.blob").unwrap();
            b.append(b"AAAA").unwrap();
            b.sync().unwrap();
            for _ in 0..8 {
                b.append(b"BBBB").unwrap();
            }
            env.set_plan(FaultPlan::crash(env.ops(), seed));
            assert!(b.sync().is_err(), "crash fires at the sync");
            env.power_cycle();
            let img = env.open_blob("t.blob").unwrap().read_all().unwrap();
            assert_eq!(&img[..4], b"AAAA");
            // After the durable prefix: zero or more whole appends, then
            // optionally one torn append (4 bytes, garbage tail), then
            // nothing.
            let tail = &img[4..];
            assert!(tail.len().is_multiple_of(4) && tail.len() <= 32);
            let whole = tail.chunks(4).take_while(|c| *c == b"BBBB").count();
            if let Some(c) = tail.chunks(4).nth(whole + 1) {
                panic!("bytes after a non-intact append: {c:?}");
            }
        }
    }

    #[test]
    fn blob_truncate_discards_the_crash_tail() {
        let env = SimEnv::new();
        let mut b = env.create_blob("t.blob").unwrap();
        b.append(b"keepkeep").unwrap();
        b.sync().unwrap();
        b.append(b"crashtail").unwrap();
        b.truncate(8).unwrap();
        assert_eq!(b.read_all().unwrap(), b"keepkeep");
        // A cut inside the unsynced tail trims the volatile appends.
        b.append(b"abcdef").unwrap();
        b.truncate(11).unwrap();
        assert_eq!(b.read_all().unwrap(), b"keepkeepabc");
    }

    #[test]
    fn blob_namespace_is_disjoint_from_block_files_and_traced() {
        let env = SimEnv::new();
        let _d = env.create_disk("store.blk", 4).unwrap();
        let mut b = env.create_blob("store.blob").unwrap();
        b.append(b"payload").unwrap();
        b.sync().unwrap();
        assert_eq!(env.file_names(), vec!["store.blk".to_string()]);
        assert_eq!(env.blob_names(), vec!["store.blob".to_string()]);
        let trace = env.take_trace();
        assert!(trace.iter().any(
            |e| matches!(e, IoEvent::Write { file, id, .. } if file == "store.blob" && *id == 0)
        ));
        assert!(trace
            .iter()
            .any(|e| matches!(e, IoEvent::Sync { file, flushed } if file == "store.blob" && *flushed == 1)));
        env.remove_blob("store.blob").unwrap();
        assert!(env.blob_names().is_empty());
        assert!(env.open_blob("store.blob").is_err());
    }
}
