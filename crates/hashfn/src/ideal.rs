//! The "ideal hash function" stand-in: a keyed double-avalanche mixer.

use rand::RngCore;

use crate::family::{HashFamily, HashFn};
use crate::mix::{fmix64, splitmix64};

/// A function drawn from [`IdealFamily`]: two independent full-avalanche
/// rounds, keyed by 128 bits.
///
/// This is the experimental realization of the paper's random oracle
/// assumption — statistically indistinguishable from uniform for our
/// sample sizes (see the chi-square tests), deterministic, and O(1) with
/// no storage, unlike a lazily-materialized truth table.
#[derive(Clone, Copy, Debug)]
pub struct IdealFn {
    k1: u64,
    k2: u64,
}

impl IdealFn {
    /// Builds the function from an explicit 128-bit key.
    pub fn from_keys(k1: u64, k2: u64) -> Self {
        IdealFn { k1, k2 }
    }

    /// Convenience: a function keyed by a single seed.
    pub fn from_seed(seed: u64) -> Self {
        IdealFn { k1: splitmix64(seed), k2: splitmix64(seed ^ 0xA5A5_A5A5_A5A5_A5A5) }
    }
}

impl HashFn for IdealFn {
    #[inline]
    fn hash64(&self, x: u64) -> u64 {
        fmix64(splitmix64(x ^ self.k1).wrapping_add(self.k2))
    }
}

/// The family of [`IdealFn`]s (uniform over the 128-bit key space).
#[derive(Clone, Copy, Debug, Default)]
pub struct IdealFamily;

impl HashFamily for IdealFamily {
    type Fn = IdealFn;

    fn sample(&self, rng: &mut dyn RngCore) -> IdealFn {
        IdealFn { k1: rng.next_u64(), k2: rng.next_u64() }
    }

    fn name(&self) -> &'static str {
        "ideal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::prefix_bucket;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_key() {
        let f = IdealFn::from_seed(11);
        assert_eq!(f.hash64(5), f.hash64(5));
        let g = IdealFn::from_seed(12);
        assert_ne!(f.hash64(5), g.hash64(5));
    }

    #[test]
    fn sampled_functions_differ() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let f = IdealFamily.sample(&mut rng);
        let g = IdealFamily.sample(&mut rng);
        assert_ne!(f.hash64(0), g.hash64(0));
    }

    #[test]
    fn chi_square_uniformity_over_buckets() {
        // 64 buckets, 64k sequential keys: chi-square should be near its
        // mean (df = 63) for a uniform hash. We accept < 2×df — a very
        // loose gate that still catches structured output on sequential
        // inputs, the classic failure mode of weak hashes.
        let f = IdealFn::from_seed(99);
        let nb = 64u64;
        let n = 65_536u64;
        let mut counts = vec![0f64; nb as usize];
        for x in 0..n {
            counts[prefix_bucket(f.hash64(x), nb) as usize] += 1.0;
        }
        let expect = n as f64 / nb as f64;
        let chi2: f64 = counts.iter().map(|c| (c - expect) * (c - expect) / expect).sum();
        assert!(chi2 < 2.0 * 63.0, "chi-square {chi2} too large for uniform");
    }

    #[test]
    fn low_bits_are_uniform_too() {
        // mask reduction on sequential keys — weak families fail this.
        let f = IdealFn::from_seed(7);
        let nb = 32u64;
        let n = 32_000u64;
        let mut counts = vec![0f64; nb as usize];
        for x in 0..n {
            counts[(f.hash64(x) & (nb - 1)) as usize] += 1.0;
        }
        let expect = n as f64 / nb as f64;
        let chi2: f64 = counts.iter().map(|c| (c - expect) * (c - expect) / expect).sum();
        assert!(chi2 < 2.0 * 31.0, "low-bit chi-square {chi2}");
    }

    #[test]
    fn birthday_collision_count_is_plausible() {
        // Hash 2^16 keys into 2^32 buckets: expected collisions ≈ C(n,2)/2^32 ≈ 0.5.
        // Seeing ≥ 20 would indicate a badly non-uniform function.
        let f = IdealFn::from_seed(5);
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for x in 0..65_536u64 {
            if !seen.insert(f.hash64(x) >> 32) {
                collisions += 1;
            }
        }
        assert!(collisions < 20, "too many collisions: {collisions}");
    }
}
