//! Hash-to-bucket reductions.

/// Fixed-point (multiply-high) reduction of a 64-bit hash to a bucket in
/// `[0, nb)`: `⌊h · nb / 2^64⌋`.
///
/// **Hierarchy property.** For any growth factor `γ ≥ 1`:
/// `prefix_bucket(h, γ·nb) ∈ { γ·q, …, γ·q + γ − 1 }` where
/// `q = prefix_bucket(h, nb)`. Proof: write `h·nb / 2^64 = q + f` with
/// `0 ≤ f < 1`; then `h·γ·nb / 2^64 = γq + γf` and `⌊γf⌋ ≤ γ − 1`.
/// This gives the paper's log-method invariant that each bucket of `H_k`
/// maps onto `γ` consecutive buckets of `H_{k+1}`, for arbitrary `nb`.
#[inline]
pub fn prefix_bucket(h: u64, nb: u64) -> u64 {
    debug_assert!(nb > 0);
    ((h as u128 * nb as u128) >> 64) as u64
}

/// Least-significant-bit reduction: `h mod nb` with `nb` a power of two.
/// Classic linear hashing grows one bucket at a time and addresses with
/// `h mod N·2^L`, which this reduction supports.
#[inline]
pub fn mask_bucket(h: u64, nb_pow2: u64) -> u64 {
    debug_assert!(nb_pow2.is_power_of_two(), "mask_bucket needs a power of two");
    h & (nb_pow2 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::SplitMix64;

    #[test]
    fn prefix_bucket_is_in_range() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            let h = rng.next_u64();
            for nb in [1u64, 2, 3, 7, 100, 1 << 20] {
                assert!(prefix_bucket(h, nb) < nb);
            }
        }
    }

    #[test]
    fn prefix_bucket_hierarchy_under_growth() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..10_000 {
            let h = rng.next_u64();
            for nb in [1u64, 3, 8, 100] {
                for gamma in [2u64, 3, 4, 16] {
                    let q = prefix_bucket(h, nb);
                    let c = prefix_bucket(h, nb * gamma);
                    assert!(
                        (gamma * q..gamma * q + gamma).contains(&c),
                        "h={h} nb={nb} γ={gamma}: parent {q}, child {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_bucket_is_monotone_in_h() {
        // Fixed-point reduction preserves hash order — handy for verifying
        // that buckets partition the hash space into contiguous ranges.
        assert!(prefix_bucket(0, 10) <= prefix_bucket(u64::MAX / 2, 10));
        assert!(prefix_bucket(u64::MAX / 2, 10) <= prefix_bucket(u64::MAX, 10));
    }

    #[test]
    fn prefix_bucket_extremes() {
        assert_eq!(prefix_bucket(0, 7), 0);
        assert_eq!(prefix_bucket(u64::MAX, 7), 6);
        assert_eq!(prefix_bucket(u64::MAX, 1), 0);
    }

    #[test]
    fn prefix_bucket_is_roughly_uniform() {
        let nb = 16u64;
        let mut counts = vec![0u64; nb as usize];
        let mut rng = SplitMix64::new(3);
        let n = 160_000;
        for _ in 0..n {
            counts[prefix_bucket(rng.next_u64(), nb) as usize] += 1;
        }
        let expect = n as f64 / nb as f64;
        for c in counts {
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "bucket count {c} far from expectation {expect}"
            );
        }
    }

    #[test]
    fn mask_bucket_matches_modulo() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..1000 {
            let h = rng.next_u64();
            assert_eq!(mask_bucket(h, 64), h % 64);
        }
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn mask_bucket_rejects_non_power_of_two() {
        let _ = mask_bucket(5, 12);
    }
}
