//! Carter–Wegman universal hashing modulo the Mersenne prime `2^61 − 1`.

use rand::RngCore;

use crate::family::{HashFamily, HashFn};
use crate::poly::{mod_mersenne61, MERSENNE61};

/// `h(x) = ((a·x + b) mod p) · 2^3` scaled back to the full 64-bit range,
/// with `p = 2^61 − 1`, `a ∈ [1, p)`, `b ∈ [0, p)`.
///
/// This is the textbook 2-universal family: for `x ≠ y`,
/// `Pr[h(x) = h(y)] ≤ 1/p`. The output is left-shifted by 3 bits so that
/// [`crate::prefix_bucket`]'s high-bit reduction sees the full entropy of
/// the 61-bit residue (the low 3 bits are zero — documented weakness for
/// mask reduction, which the A2 ablation exercises).
#[derive(Clone, Copy, Debug)]
pub struct UniversalFn {
    a: u64,
    b: u64,
}

impl UniversalFn {
    /// Builds from explicit coefficients (reduced mod `p`; `a` forced
    /// nonzero).
    pub fn from_coeffs(a: u64, b: u64) -> Self {
        let a = a % MERSENNE61;
        let a = if a == 0 { 1 } else { a };
        UniversalFn { a, b: b % MERSENNE61 }
    }
}

impl HashFn for UniversalFn {
    #[inline]
    fn hash64(&self, x: u64) -> u64 {
        // Split x into two 61-bit-safe halves: x = hi·2^32 + lo, then
        // a·x + b ≡ a·hi·2^32 + a·lo + b (mod p), each product < 2^93 < 2^128.
        let lo = x & 0xFFFF_FFFF;
        let hi = x >> 32;
        let t = mod_mersenne61(self.a as u128 * hi as u128);
        let t = mod_mersenne61((t as u128) << 32);
        let u = mod_mersenne61(self.a as u128 * lo as u128);
        let r = mod_mersenne61(t as u128 + u as u128 + self.b as u128);
        r << 3
    }
}

/// The family of [`UniversalFn`]s.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniversalFamily;

impl HashFamily for UniversalFamily {
    type Fn = UniversalFn;

    fn sample(&self, rng: &mut dyn RngCore) -> UniversalFn {
        UniversalFn::from_coeffs(rng.next_u64(), rng.next_u64())
    }

    fn name(&self) -> &'static str {
        "universal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::prefix_bucket;
    use rand::SeedableRng;

    #[test]
    fn zero_a_is_rejected() {
        let f = UniversalFn::from_coeffs(0, 5);
        // a=0 would make the function constant.
        assert_ne!(f.hash64(1), f.hash64(2));
    }

    #[test]
    fn linearity_structure_mod_p() {
        // h is affine in x over Z_p: h(x) ≠ h(y) for small distinct x, y
        // with overwhelming probability over coefficients.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let f = UniversalFamily.sample(&mut rng);
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(f.hash64(x)), "collision among 10k keys at x={x}");
        }
    }

    #[test]
    fn pairwise_collision_probability_matches_universality() {
        // Sample many coefficient pairs; for a fixed key pair the collision
        // rate over the family must be ≤ ~1/p (we just check it is tiny).
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut collisions = 0;
        for _ in 0..20_000 {
            let f = UniversalFamily.sample(&mut rng);
            if f.hash64(123) == f.hash64(456) {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn buckets_are_roughly_uniform_on_sequential_keys() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let f = UniversalFamily.sample(&mut rng);
        let nb = 32u64;
        let n = 64_000u64;
        let mut counts = vec![0f64; nb as usize];
        for x in 0..n {
            counts[prefix_bucket(f.hash64(x), nb) as usize] += 1.0;
        }
        let expect = n as f64 / nb as f64;
        let chi2: f64 = counts.iter().map(|c| (c - expect) * (c - expect) / expect).sum();
        // Affine-mod-p on sequential keys is structured but equidistributed;
        // allow a wide margin.
        assert!(chi2 < 10.0 * 31.0, "chi-square {chi2}");
    }

    #[test]
    fn output_range_uses_high_bits() {
        let f = UniversalFn::from_coeffs(12345, 999);
        // Left shift by 3: low 3 bits are zero (documented), value < 2^64.
        assert_eq!(f.hash64(42) & 0b111, 0);
    }
}
