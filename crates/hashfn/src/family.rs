//! The family/function traits.

use rand::RngCore;

/// A sampled hash function: a deterministic map `u64 → u64`.
///
/// Implementations must be cheap to clone (functions are shared between a
/// table and the measurement harness) and `Send + Sync` so parallel trial
/// runners can move tables across threads.
pub trait HashFn: Clone + Send + Sync {
    /// The 64-bit hash of `x`. All 64 output bits should be usable; where
    /// a family has weaker guarantees (e.g. multiply-shift's low bits) the
    /// family documents it.
    fn hash64(&self, x: u64) -> u64;
}

/// A distribution over hash functions, from which tables draw their `h`.
///
/// The paper's lower bound fixes the *family* in advance (the memory can
/// hold at most `2^(m log u)` distinct address functions) while the upper
/// bounds sample one function per structure; this trait captures both uses.
pub trait HashFamily {
    /// The concrete function type this family samples.
    type Fn: HashFn;

    /// Draws a function using `rng` for the random seed/coefficients.
    fn sample(&self, rng: &mut dyn RngCore) -> Self::Fn;

    /// A short human-readable name ("ideal", "universal", …) used in
    /// experiment output.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealFamily;
    use rand::SeedableRng;

    #[test]
    fn families_are_usable_through_the_trait() {
        fn sample_via_trait<F: HashFamily>(f: &F, seed: u64) -> F::Fn {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            f.sample(&mut rng)
        }
        let f = sample_via_trait(&IdealFamily, 1);
        let g = sample_via_trait(&IdealFamily, 1);
        assert_eq!(f.hash64(42), g.hash64(42), "same seed, same function");
        let h = sample_via_trait(&IdealFamily, 2);
        assert_ne!(f.hash64(42), h.hash64(42), "different seed, different function");
    }
}
