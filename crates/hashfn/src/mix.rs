//! 64-bit finalizers and a tiny deterministic RNG.

/// The SplitMix64 output function (Steele, Lea, Flood): a full-avalanche
/// bijection on `u64` after adding the golden-ratio increment.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// MurmurHash3's 64-bit finalizer (`fmix64`): a second independent
/// full-avalanche bijection.
#[inline]
pub fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// A minimal deterministic RNG (SplitMix64 stream) used where a fast,
/// dependency-light generator is wanted (e.g. filling tabulation tables).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` via Lemire's multiply-high method
    /// (negligible bias for the `n ≪ 2^64` used here).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalizers_are_deterministic_and_distinct() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_eq!(fmix64(1), fmix64(1));
        assert_ne!(splitmix64(1), fmix64(1));
    }

    #[test]
    fn fmix64_is_bijective_on_a_sample() {
        // Bijections have no collisions; check a decent sample.
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(fmix64(x)));
        }
    }

    #[test]
    fn splitmix_stream_is_reproducible() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn avalanche_quality_smoke() {
        // Flipping one input bit should flip ~32 of 64 output bits.
        let mut total = 0u32;
        let trials = 64 * 100;
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            let x = rng.next_u64();
            for bit in 0..64 {
                total += (fmix64(x) ^ fmix64(x ^ (1 << bit))).count_ones();
            }
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 32.0).abs() < 2.0, "poor avalanche: mean flips {mean}");
    }
}
