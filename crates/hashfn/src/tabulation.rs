//! Simple tabulation hashing (Zobrist / Pătraşcu–Thorup).

use std::sync::Arc;

use rand::RngCore;

use crate::family::{HashFamily, HashFn};

/// Simple tabulation: split the key into 8 bytes, XOR together one random
/// table entry per byte. 3-independent, and by Pătraşcu–Thorup it behaves
/// like full randomness for many hashing applications (chaining, linear
/// probing) despite its low formal independence.
///
/// The 8×256 table of `u64` (16 KiB) is shared behind an [`Arc`] so the
/// function stays cheap to clone.
#[derive(Clone, Debug)]
pub struct TabulationFn {
    tables: Arc<[[u64; 256]; 8]>,
}

impl TabulationFn {
    /// Builds from a full table (mostly for tests).
    pub fn from_tables(tables: [[u64; 256]; 8]) -> Self {
        TabulationFn { tables: Arc::new(tables) }
    }

    /// Fills the tables from an RNG.
    pub fn sample_from(rng: &mut dyn RngCore) -> Self {
        let mut tables = [[0u64; 256]; 8];
        for t in tables.iter_mut() {
            for e in t.iter_mut() {
                *e = rng.next_u64();
            }
        }
        TabulationFn { tables: Arc::new(tables) }
    }
}

impl HashFn for TabulationFn {
    #[inline]
    fn hash64(&self, x: u64) -> u64 {
        let bytes = x.to_le_bytes();
        let t = &*self.tables;
        t[0][bytes[0] as usize]
            ^ t[1][bytes[1] as usize]
            ^ t[2][bytes[2] as usize]
            ^ t[3][bytes[3] as usize]
            ^ t[4][bytes[4] as usize]
            ^ t[5][bytes[5] as usize]
            ^ t[6][bytes[6] as usize]
            ^ t[7][bytes[7] as usize]
    }
}

/// The family of [`TabulationFn`]s.
#[derive(Clone, Copy, Debug, Default)]
pub struct TabulationFamily;

impl HashFamily for TabulationFamily {
    type Fn = TabulationFn;

    fn sample(&self, rng: &mut dyn RngCore) -> TabulationFn {
        TabulationFn::sample_from(rng)
    }

    fn name(&self) -> &'static str {
        "tabulation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::prefix_bucket;
    use rand::SeedableRng;

    fn sample(seed: u64) -> TabulationFn {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TabulationFamily.sample(&mut rng)
    }

    #[test]
    fn xor_structure_holds() {
        // Keys differing in one byte differ by an XOR of two table entries;
        // hashes of x and x' with equal bytes elsewhere satisfy
        // h(x) ^ h(x') = T[i][b] ^ T[i][b'].
        let f = sample(1);
        let a = f.hash64(0x11);
        let b = f.hash64(0x22);
        let direct = f.tables[0][0x11] ^ f.tables[0][0x22];
        assert_eq!(a ^ b, direct);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let f = sample(2);
        let g = sample(2);
        let h = sample(3);
        assert_eq!(f.hash64(123), g.hash64(123));
        assert_ne!(f.hash64(123), h.hash64(123));
    }

    #[test]
    fn bucket_uniformity_on_sequential_keys() {
        let f = sample(4);
        let nb = 32u64;
        let n = 64_000u64;
        let mut counts = vec![0f64; nb as usize];
        for x in 0..n {
            counts[prefix_bucket(f.hash64(x), nb) as usize] += 1.0;
        }
        let expect = n as f64 / nb as f64;
        let chi2: f64 = counts.iter().map(|c| (c - expect) * (c - expect) / expect).sum();
        assert!(chi2 < 2.0 * 31.0, "chi-square {chi2}");
    }

    #[test]
    fn clone_shares_tables() {
        let f = sample(5);
        let g = f.clone();
        assert!(Arc::ptr_eq(&f.tables, &g.tables));
    }
}
