//! # dxh-hashfn — hash function families
//!
//! The paper analyzes hash tables under the *ideal hash function*
//! assumption: `h` maps each item independently and uniformly at random
//! into `{0, …, u−1}` (justified by Mitzenmacher–Vadhan for realistic data
//! streams). This crate provides:
//!
//! * [`IdealFamily`] — a keyed pseudorandom mixer that plays the role of
//!   the random oracle in experiments;
//! * classical families with weaker, *provable* guarantees for the hash
//!   sensitivity ablation: [`UniversalFamily`] (Carter–Wegman),
//!   [`MultiplyShiftFamily`] (Dietzfelbinger), [`TabulationFamily`]
//!   (simple tabulation), and [`PolynomialFamily`] (k-independent).
//!
//! ## Bucket reduction
//!
//! All families emit full 64-bit hash values; structures reduce them to
//! bucket indices with [`prefix_bucket`] — fixed-point multiply-high
//! reduction. Its crucial property (proved in `reduction::tests` and by a
//! property test) is **hierarchy**: growing a table from `nb` to `γ·nb`
//! buckets maps every old bucket `q` onto exactly the `γ` consecutive new
//! buckets `γq … γq+γ−1`. That is precisely the "each bucket in `H_k`
//! corresponds to `γ` consecutive buckets in `H_{k+1}`" structure the
//! paper's logarithmic method relies on for its linear-scan merges, and it
//! works for *any* bucket count, not just powers of two.
//!
//! [`mask_bucket`] (least-significant bits) is provided for classic linear
//! hashing, which grows one bucket at a time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod family;
mod ideal;
mod mix;
mod multiply_shift;
mod poly;
mod reduction;
mod tabulation;
mod universal;

pub use family::{HashFamily, HashFn};
pub use ideal::{IdealFamily, IdealFn};
pub use mix::{fmix64, splitmix64, SplitMix64};
pub use multiply_shift::{MultiplyShiftFamily, MultiplyShiftFn};
pub use poly::{PolynomialFamily, PolynomialFn, MERSENNE61};
pub use reduction::{mask_bucket, prefix_bucket};
pub use tabulation::{TabulationFamily, TabulationFn};
pub use universal::{UniversalFamily, UniversalFn};
