//! k-independent polynomial hashing over `Z_p`, `p = 2^61 − 1`.

use rand::RngCore;

use crate::family::{HashFamily, HashFn};

/// The Mersenne prime `2^61 − 1` used for fast modular reduction.
pub const MERSENNE61: u64 = (1 << 61) - 1;

/// Reduces a value `< 2^122` modulo `2^61 − 1` without division.
#[inline]
pub(crate) fn mod_mersenne61(t: u128) -> u64 {
    // Two folding rounds bring any t < 2^122 below 2^62, then one
    // conditional subtraction finishes.
    let p = MERSENNE61 as u128;
    let r = (t & p) + (t >> 61);
    let r = (r & p) + (r >> 61);
    let r = r as u64;
    if r >= MERSENNE61 {
        r - MERSENNE61
    } else {
        r
    }
}

/// A degree-(k−1) polynomial with random coefficients in `Z_p`, evaluated
/// by Horner's rule: the classic k-independent family of Wegman–Carter.
///
/// `k = 2` recovers the universal family; higher `k` gives stronger
/// independence at cost O(k) per evaluation. Output is the 61-bit residue
/// shifted left 3 bits (same high-bit convention as
/// [`crate::UniversalFn`]).
#[derive(Clone, Debug)]
pub struct PolynomialFn {
    /// `coeffs[0]` is the constant term.
    coeffs: Vec<u64>,
}

impl PolynomialFn {
    /// Builds from explicit coefficients (each reduced mod p). The leading
    /// coefficient is forced nonzero so the polynomial has full degree.
    pub fn from_coeffs(mut coeffs: Vec<u64>) -> Self {
        assert!(!coeffs.is_empty(), "need at least one coefficient");
        for c in &mut coeffs {
            *c %= MERSENNE61;
        }
        let n = coeffs.len();
        if n > 1 && coeffs[n - 1] == 0 {
            coeffs[n - 1] = 1;
        }
        PolynomialFn { coeffs }
    }

    /// Independence degree k (number of coefficients).
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }
}

impl HashFn for PolynomialFn {
    #[inline]
    fn hash64(&self, x: u64) -> u64 {
        // Map the 64-bit key into Z_p first (mod p), a negligible-bias fold.
        let x = mod_mersenne61(x as u128);
        let mut acc: u64 = 0;
        for &c in self.coeffs.iter().rev() {
            acc = mod_mersenne61(acc as u128 * x as u128 + c as u128);
        }
        acc << 3
    }
}

/// The family of k-independent [`PolynomialFn`]s.
#[derive(Clone, Copy, Debug)]
pub struct PolynomialFamily {
    k: usize,
}

impl PolynomialFamily {
    /// A family of k-wise independent functions (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        PolynomialFamily { k }
    }
}

impl HashFamily for PolynomialFamily {
    type Fn = PolynomialFn;

    fn sample(&self, rng: &mut dyn RngCore) -> PolynomialFn {
        let coeffs = (0..self.k).map(|_| rng.next_u64()).collect();
        PolynomialFn::from_coeffs(coeffs)
    }

    fn name(&self) -> &'static str {
        "polynomial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mersenne_reduction_matches_plain_modulo() {
        let cases: [u128; 6] = [
            0,
            1,
            MERSENNE61 as u128,
            MERSENNE61 as u128 + 1,
            u64::MAX as u128,
            u128::MAX >> 6, // < 2^122
        ];
        for t in cases {
            assert_eq!(mod_mersenne61(t) as u128, t % MERSENNE61 as u128, "t = {t}");
        }
    }

    #[test]
    fn degree_one_is_constant() {
        let f = PolynomialFn::from_coeffs(vec![42]);
        assert_eq!(f.hash64(1), f.hash64(999));
        assert_eq!(f.hash64(1), 42 << 3);
    }

    #[test]
    fn degree_two_is_affine_and_injective_on_small_keys() {
        let f = PolynomialFn::from_coeffs(vec![7, 3]);
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(f.hash64(x)));
        }
    }

    #[test]
    fn leading_coefficient_forced_nonzero() {
        let f = PolynomialFn::from_coeffs(vec![5, 0]);
        assert_eq!(f.k(), 2);
        assert_ne!(f.hash64(1), f.hash64(2), "degenerate constant polynomial");
    }

    #[test]
    fn family_samples_requested_degree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let f = PolynomialFamily::new(5).sample(&mut rng);
        assert_eq!(f.k(), 5);
    }

    #[test]
    fn five_independent_evaluations_look_unstructured() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let f = PolynomialFamily::new(5).sample(&mut rng);
        // crude serial-correlation check over sequential keys
        let vals: Vec<u64> = (0..4096u64).map(|x| f.hash64(x) >> 32).collect();
        let mean = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
        let expected = (u32::MAX as f64) / 2.0 * 2.0_f64.powi(0); // ~2^31 scale
        assert!((mean / expected - 1.0).abs() < 0.15, "mean {mean} vs {expected}");
    }
}
