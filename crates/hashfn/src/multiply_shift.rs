//! Dietzfelbinger's multiply-shift hashing.

use rand::RngCore;

use crate::family::{HashFamily, HashFn};

/// `h(x) = a·x + b (mod 2^64)`, with `a` odd: the multiply-(add-)shift
/// scheme. The **high** bits of the output are 2-universal for
/// power-of-two ranges; the low bits are known to be weak.
///
/// Paired with [`crate::prefix_bucket`] (which consumes high bits) this is
/// a strong practical family; paired with [`crate::mask_bucket`] (low
/// bits, as classic linear hashing does) it degrades — which is exactly
/// what the A2 hash-sensitivity ablation demonstrates.
#[derive(Clone, Copy, Debug)]
pub struct MultiplyShiftFn {
    a: u64,
    b: u64,
}

impl MultiplyShiftFn {
    /// Builds from explicit parameters; `a` is forced odd.
    pub fn from_params(a: u64, b: u64) -> Self {
        MultiplyShiftFn { a: a | 1, b }
    }
}

impl HashFn for MultiplyShiftFn {
    #[inline]
    fn hash64(&self, x: u64) -> u64 {
        self.a.wrapping_mul(x).wrapping_add(self.b)
    }
}

/// The family of [`MultiplyShiftFn`]s (uniform odd `a`, uniform `b`).
#[derive(Clone, Copy, Debug, Default)]
pub struct MultiplyShiftFamily;

impl HashFamily for MultiplyShiftFamily {
    type Fn = MultiplyShiftFn;

    fn sample(&self, rng: &mut dyn RngCore) -> MultiplyShiftFn {
        MultiplyShiftFn::from_params(rng.next_u64(), rng.next_u64())
    }

    fn name(&self) -> &'static str {
        "multiply-shift"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::{mask_bucket, prefix_bucket};
    use rand::SeedableRng;

    #[test]
    fn a_is_forced_odd() {
        let f = MultiplyShiftFn::from_params(4, 0);
        // even a would not be a bijection mod 2^64
        let mut seen = std::collections::HashSet::new();
        for x in 0..1000u64 {
            assert!(seen.insert(f.hash64(x)));
        }
    }

    #[test]
    fn high_bits_spread_sequential_keys() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let f = MultiplyShiftFamily.sample(&mut rng);
        let nb = 32u64;
        let n = 32_000u64;
        let mut counts = vec![0f64; nb as usize];
        for x in 0..n {
            counts[prefix_bucket(f.hash64(x), nb) as usize] += 1.0;
        }
        let expect = n as f64 / nb as f64;
        let chi2: f64 = counts.iter().map(|c| (c - expect) * (c - expect) / expect).sum();
        // a·x on sequential x equidistributes over high bits.
        assert!(chi2 < 10.0 * 31.0, "high-bit chi-square {chi2}");
    }

    #[test]
    fn low_bits_are_visibly_weak_on_strided_keys() {
        // This documents the known failure mode: keys in an arithmetic
        // progression of even stride land in a strict subset of low-bit
        // buckets. (The test asserts the *weakness*, since the ablation
        // relies on it being observable.)
        let f = MultiplyShiftFn::from_params(0x9E37_79B9_7F4A_7C15, 0);
        let nb = 64u64;
        let mut hit = vec![false; nb as usize];
        for i in 0..10_000u64 {
            let x = i * 64; // stride 64
            hit[mask_bucket(f.hash64(x), nb) as usize] = true;
        }
        let used = hit.iter().filter(|&&h| h).count();
        assert!(used <= 2, "stride-64 keys hit only {used} low-bit buckets");
    }

    #[test]
    fn distinct_parameters_give_distinct_functions() {
        let f = MultiplyShiftFn::from_params(3, 0);
        let g = MultiplyShiftFn::from_params(5, 0);
        assert_ne!(f.hash64(1), g.hash64(1));
    }
}
