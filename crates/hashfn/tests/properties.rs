//! Property-based tests for hash families and reductions.

use dxh_hashfn::{
    mask_bucket, prefix_bucket, HashFamily, HashFn, IdealFamily, MultiplyShiftFamily,
    PolynomialFamily, TabulationFamily, UniversalFamily,
};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    /// prefix_bucket is always in range and hierarchical for any γ.
    #[test]
    fn prefix_bucket_range_and_hierarchy(h in any::<u64>(), nb in 1u64..1_000_000, gamma in 1u64..64) {
        let q = prefix_bucket(h, nb);
        prop_assert!(q < nb);
        let c = prefix_bucket(h, nb * gamma);
        prop_assert!(c >= gamma * q && c < gamma * q + gamma);
    }

    /// mask_bucket matches modulo for powers of two.
    #[test]
    fn mask_bucket_is_modulo(h in any::<u64>(), log_nb in 0u32..20) {
        let nb = 1u64 << log_nb;
        prop_assert_eq!(mask_bucket(h, nb), h % nb);
    }

    /// Every family is deterministic: the same sampled function agrees
    /// with its clone on arbitrary inputs.
    #[test]
    fn families_deterministic(seed in any::<u64>(), xs in proptest::collection::vec(any::<u64>(), 1..50)) {
        macro_rules! check {
            ($family:expr) => {{
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let f = $family.sample(&mut rng);
                let g = f.clone();
                for &x in &xs {
                    prop_assert_eq!(f.hash64(x), g.hash64(x));
                }
            }};
        }
        check!(IdealFamily);
        check!(UniversalFamily);
        check!(MultiplyShiftFamily);
        check!(TabulationFamily);
        check!(PolynomialFamily::new(4));
    }

    /// Two distinct keys rarely collide under a random ideal function
    /// (they never should in a small proptest run).
    #[test]
    fn ideal_no_trivial_collisions(seed in any::<u64>(), x in any::<u64>(), y in any::<u64>()) {
        prop_assume!(x != y);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = IdealFamily.sample(&mut rng);
        prop_assert_ne!(f.hash64(x), f.hash64(y));
    }

    /// Bucket counts of 1 send everything to bucket 0.
    #[test]
    fn single_bucket(h in any::<u64>()) {
        prop_assert_eq!(prefix_bucket(h, 1), 0);
        prop_assert_eq!(mask_bucket(h, 1), 0);
    }
}
