//! **Recovery torture** — seed-reproducible crash-recovery runs of the
//! persistent store on the crash-simulation environment.
//!
//! For each seed: one crash-free lifecycle (churn prefix with periodic
//! syncs → final sync → unsynced tail → compact) to locate the commit
//! windows, then a crash at **every** I/O index of the final sync and of
//! the compaction, plus crashes scattered across the rest of the
//! lifecycle. Each crash is followed by power-cycle, reopen, and the
//! full invariant battery (synced-state durability, no phantoms, orphan
//! accounting, compaction round-trip, continued usability).
//!
//! Any violation prints the failing seed and crash index — rerun with
//! `--seed <seed>` to replay exactly (runs are deterministic down to the
//! I/O trace) — and the process exits non-zero.
//!
//! Output: an aligned table and `results/torture.csv`.
//!
//! Run: `cargo run -p dxh-bench --release --bin torture [--quick]
//! [--seeds N] [--seed S]`

use std::time::Instant;

use dxh_analysis::{table::fmt_f, TextTable};
use dxh_bench::{emit, ExpArgs};
use dxh_workloads::torture::{torture_run, TortureReport, TortureSpec};

struct SeedRow {
    seed: u64,
    total_ops: u64,
    swept: u64,
    scattered: u64,
    violations: usize,
    wall_ms: f64,
}

/// Accepts both the decimal and the `0x…` form — the table below prints
/// seeds in hex, and replaying one must work by copy-paste.
fn parse_seed(s: &str) -> u64 {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("--seed takes a number (decimal or 0x-hex), got {s:?}"))
}

fn main() {
    let args = ExpArgs::parse();
    let seeds: Vec<u64> = if let Some(s) = args.get("seed") {
        vec![parse_seed(s)]
    } else {
        let n: u64 = args
            .get("seeds")
            .map(|v| v.parse().expect("--seeds takes a number"))
            .unwrap_or(args.scale(16, 4) as u64);
        (0..n).map(|i| 0xBAD5_EED0u64.wrapping_add(i.wrapping_mul(0x9e37_79b9))).collect()
    };

    let mut rows = Vec::new();
    let mut failures: Vec<TortureReport> = Vec::new();
    for &seed in &seeds {
        let t0 = Instant::now();
        let spec = TortureSpec::small(seed);
        let clean = torture_run(&spec, None);
        let mut violations = clean.violations.len();
        if !clean.violations.is_empty() {
            failures.push(clean.clone());
        }
        let Some(m) = clean.markers else {
            rows.push(SeedRow {
                seed,
                total_ops: 0,
                swept: 0,
                scattered: 0,
                violations,
                wall_ms: ms(t0),
            });
            continue;
        };
        // Exhaustive over both commit windows.
        let mut swept = 0u64;
        for k in (m.final_sync.0..m.final_sync.1).chain(m.compact.0..m.compact.1) {
            let r = torture_run(&spec, Some(k));
            swept += 1;
            if !r.violations.is_empty() {
                violations += r.violations.len();
                failures.push(r);
            }
        }
        // Scattered across the rest of the lifecycle.
        let points = args.scale(48, 12) as u64;
        let mut scattered = 0u64;
        for p in 0..points {
            let k = (p * m.total_ops) / points;
            if (m.final_sync.0..m.final_sync.1).contains(&k)
                || (m.compact.0..m.compact.1).contains(&k)
            {
                continue; // already swept exhaustively
            }
            let r = torture_run(&spec, Some(k));
            scattered += 1;
            if !r.violations.is_empty() {
                violations += r.violations.len();
                failures.push(r);
            }
        }
        rows.push(SeedRow {
            seed,
            total_ops: m.total_ops,
            swept,
            scattered,
            violations,
            wall_ms: ms(t0),
        });
    }

    let mut table = TextTable::new([
        "seed",
        "lifecycle I/Os",
        "window crashes",
        "scattered",
        "violations",
        "ms",
    ]);
    for r in &rows {
        table.row([
            format!("{:#x}", r.seed),
            r.total_ops.to_string(),
            r.swept.to_string(),
            r.scattered.to_string(),
            r.violations.to_string(),
            fmt_f(r.wall_ms, 1),
        ]);
    }
    println!(
        "Recovery torture: {} seed(s), exhaustive sync+compact windows, {} crashes total",
        seeds.len(),
        rows.iter().map(|r| r.swept + r.scattered).sum::<u64>()
    );
    emit("Crash-recovery torture sweep", &table, &args, "torture.csv");

    if !failures.is_empty() {
        eprintln!("\n{} violating run(s):", failures.len());
        for f in failures.iter().take(10) {
            eprintln!(
                "  seed {:#x} crash_at {:?}: {}",
                f.seed,
                f.crash_at,
                f.violations.first().map(String::as_str).unwrap_or("?")
            );
            eprintln!(
                "    replay: cargo run -p dxh-bench --release --bin torture -- --seed {}",
                f.seed
            );
        }
        std::process::exit(1);
    }
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}
