//! **L5** — Lemma 5: the logarithmic method.
//!
//! Sweeps the growth factor `γ`, measuring amortized insertion cost
//! against `O((γ/b)·log(n/m))` and lookup cost against
//! `O(log_γ(n/m))`. Also reports the number of active levels — the
//! quantity the query bound actually counts.
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_logmethod [--quick]`

use dxh_analysis::{lemma5_tq, lemma5_tu, stats::RunningStats, table::fmt_f, TextTable};
use dxh_bench::{emit, insert_uniform, ExpArgs};
use dxh_core::{CoreConfig, ExternalDictionary, LogMethodTable};
use dxh_workloads::{measure_tq, parallel_trials};

fn main() {
    let args = ExpArgs::parse();
    let b = 64;
    let m = 1024;
    let n = args.scale(150_000, 15_000);
    let samples = args.scale(2500, 500);

    let mut table = TextTable::new([
        "γ",
        "tu (meas)",
        "tu bound (γ/b·log₂(n/m))",
        "tq (meas)",
        "tq bound (log_γ(n/m))",
        "levels",
    ]);
    for gamma in [2u64, 4, 8, 16] {
        let rows = parallel_trials(args.trials, 0x109, |seed| {
            let cfg = CoreConfig::lemma5(b, m, gamma).unwrap();
            let mut t = LogMethodTable::new(cfg, seed).unwrap();
            let keys = insert_uniform(&mut t, n, seed).unwrap();
            let tu = t.total_ios() as f64 / n as f64;
            let tq = measure_tq(&mut t, &keys, samples, seed ^ 7).unwrap();
            (tu, tq, t.active_levels())
        });
        let mut tu = RunningStats::new();
        let mut tq = RunningStats::new();
        let mut lv = RunningStats::new();
        for (a, q, l) in rows {
            tu.push(a);
            tq.push(q);
            lv.push(l as f64);
        }
        table.row([
            gamma.to_string(),
            fmt_f(tu.mean(), 4),
            fmt_f(lemma5_tu(b, gamma, n, m), 4),
            fmt_f(tq.mean(), 3),
            fmt_f(lemma5_tq(gamma, n, m), 3),
            fmt_f(lv.mean(), 1),
        ]);
    }
    println!(
        "Lemma 5 (logarithmic method): b = {b}, m = {m}, n = {n}, {} trials.\n\
         Bound constants fixed at 1; with fused in-place migrations the merge\n\
         machinery's constant is ≈ 2(1+γ)/γ per level (see DESIGN.md), so\n\
         measured tu sits a small constant above the unit-constant bound while\n\
         scaling the same way in γ, b, and n/m. tq is a staircase in the level\n\
         occupancy at snapshot time, bounded by the level count.",
        args.trials
    );
    emit("logarithmic method (Lemma 5)", &table, &args, "exp_logmethod.csv");
}
