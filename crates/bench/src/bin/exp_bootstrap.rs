//! **T2** — Theorem 2: the bootstrapped hash table.
//!
//! Two sweeps:
//!
//! 1. the exponent `c` (`β = b^c`): measured `tu` against `O(b^(c−1))`
//!    and measured `tq` against `1 + O(1/b^c)`;
//! 2. the ε-form (`β = Θ(εb)`): measured `tu` against `ε` with
//!    `tq = 1 + O(1/b)`.
//!
//! Also reports the structural invariants the analysis rests on: the
//! fraction of items in `Ĥ` (must be ≥ 1 − 1/β) and the number of
//! merges.
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_bootstrap [--quick]`

use dxh_analysis::{
    stats::RunningStats, table::fmt_f, theorem2_tq_upper, theorem2_tu_upper, TextTable,
};
use dxh_bench::{emit, insert_uniform, ExpArgs};
use dxh_core::{BootstrappedTable, CoreConfig, ExternalDictionary};
use dxh_workloads::{measure_tq, parallel_trials};

fn main() {
    let args = ExpArgs::parse();
    let b = 64;
    let m = 1024;
    let n = args.scale(200_000, 20_000);
    let samples = args.scale(3000, 600);

    // Sweep 1: c (β = b^c).
    let mut t1 = TextTable::new([
        "c",
        "β=b^c",
        "tu (meas)",
        "tu bound b^(c−1)",
        "tq (meas)",
        "tq bound 1+1/b^c",
        "Ĥ fraction",
        "1−1/β",
        "merges",
    ]);
    for c in [0.25, 0.5, 0.75] {
        let rows = parallel_trials(args.trials, 0xB007, |seed| {
            let cfg = CoreConfig::theorem2(b, m, c).unwrap();
            let beta = cfg.beta;
            let mut t = BootstrappedTable::new(cfg, seed).unwrap();
            let keys = insert_uniform(&mut t, n, seed).unwrap();
            let tu = t.total_ios() as f64 / n as f64;
            let tq = measure_tq(&mut t, &keys, samples, seed ^ 3).unwrap();
            (tu, tq, t.hat_fraction(), t.merge_count(), beta)
        });
        let mut tu = RunningStats::new();
        let mut tq = RunningStats::new();
        let mut frac = RunningStats::new();
        let mut merges = RunningStats::new();
        let mut beta = 0.0;
        for (a, q, f, mg, bt) in rows {
            tu.push(a);
            tq.push(q);
            frac.push(f);
            merges.push(mg as f64);
            beta = bt;
        }
        t1.row([
            fmt_f(c, 2),
            fmt_f(beta, 2),
            fmt_f(tu.mean(), 4),
            fmt_f(theorem2_tu_upper(b, c), 4),
            fmt_f(tq.mean(), 4),
            fmt_f(theorem2_tq_upper(b, c), 4),
            fmt_f(frac.mean(), 4),
            fmt_f(1.0 - 1.0 / beta, 4),
            fmt_f(merges.mean(), 0),
        ]);
    }
    println!("Theorem 2 (bootstrapped table): b = {b}, m = {m}, n = {n}, {} trials.", args.trials);
    emit("Theorem 2 — c sweep (β = b^c, γ = 2)", &t1, &args, "exp_bootstrap_c.csv");

    // Sweep 2: the ε form.
    let mut t2 =
        TextTable::new(["ε", "β", "tu (meas)", "tu target ε", "tq (meas)", "tq bound 1+O(1/b)"]);
    for eps in [0.125, 0.25, 0.5, 1.0] {
        let rows = parallel_trials(args.trials, 0xE125, |seed| {
            let cfg = CoreConfig::boundary(b, m, eps).unwrap();
            let beta = cfg.beta;
            let mut t = BootstrappedTable::new(cfg, seed).unwrap();
            let keys = insert_uniform(&mut t, n, seed).unwrap();
            let tu = t.total_ios() as f64 / n as f64;
            let tq = measure_tq(&mut t, &keys, samples, seed ^ 9).unwrap();
            (tu, tq, beta)
        });
        let mut tu = RunningStats::new();
        let mut tq = RunningStats::new();
        let mut beta = 0.0;
        for (a, q, bt) in rows {
            tu.push(a);
            tq.push(q);
            beta = bt;
        }
        t2.row([
            fmt_f(eps, 3),
            fmt_f(beta, 2),
            fmt_f(tu.mean(), 4),
            fmt_f(eps, 3),
            fmt_f(tq.mean(), 4),
            fmt_f(1.0 + 1.0 / b as f64, 4),
        ]);
    }
    emit("Theorem 2 — ε sweep (the 1 + Θ(1/b) boundary)", &t2, &args, "exp_bootstrap_eps.csv");
    println!(
        "\nReading: tu falls like b^(c−1) while tq stays pinned at 1 + O(1/b^c);\n\
         the ε rows show insertion cost dialing down to (a constant times) ε\n\
         exactly at the boundary query cost 1 + Θ(1/b) — the paper's Theorem 2."
    );
}
