//! **T1.1–T1.3** — Theorem 1: the lower-bound adversary harness.
//!
//! For each regime, drives a table through rounds of `s` random
//! insertions with the proof's parameters `(δ, φ, ρ, s)` and reports:
//!
//! * the **certified** amortized insertion lower bound `ΣZ/n` (distinct
//!   fast-zone addresses receiving items per round — blocks that *must*
//!   have been written);
//! * the measured amortized insertion cost;
//! * the theorem's predicted bound;
//! * the zones account: max `tq` lower bound and mean slow-zone share
//!   (Lemma 1's `|S| ≤ m + δk/φ` budget).
//!
//! Regime 1 and 2 run the chaining table (a structure honoring
//! `tq ≈ 1`); regime 3 runs the bootstrapped table at the matching `c`
//! to show the certificate agreeing with the `Θ(b^(c−1))` frontier.
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_lowerbound -- [--regime 1|2|3] [--quick]`

use dxh_analysis::{table::fmt_f, TextTable};
use dxh_bench::{emit, ExpArgs};
use dxh_core::{BootstrappedTable, CoreConfig};
use dxh_hashfn::IdealFn;
use dxh_lowerbound::{run_adversary, Regime};
use dxh_tables::{ChainingConfig, ChainingTable};

fn main() {
    let args = ExpArgs::parse();
    let which: Option<u32> = args.get("regime").and_then(|s| s.parse().ok());
    let mut table = TextTable::new([
        "regime",
        "structure",
        "b",
        "n",
        "s (round)",
        "certified tu LB",
        "measured tu",
        "Thm1 bound",
        "max tq zone LB",
        "slow share",
    ]);

    let run_regime = |table: &mut TextTable, regime: Regime, idx: u32| {
        let (b, n, structure): (usize, usize, &str) = match regime {
            Regime::Case1 { .. } => (16, args.scale(65_536, 8_192), "chaining"),
            Regime::Case2 { .. } => (16, args.scale(65_536, 8_192), "chaining"),
            Regime::Case3 { .. } => (64, args.scale(80_000, 16_000), "bootstrapped"),
        };
        let params = regime.params(b, n);
        let report = match regime {
            Regime::Case3 { c } => {
                let cfg = CoreConfig::theorem2(b, 1024, c).expect("config");
                let mut t = BootstrappedTable::new(cfg, 0xAD5E ^ idx as u64).expect("table");
                run_adversary(&mut t, n, &params, 0x1357 + idx as u64).expect("run")
            }
            _ => {
                // Fixed chaining table at load ≤ 1/2: the tq ≈ 1 regime.
                let buckets = (2 * n / b) as u64;
                let cfg = ChainingConfig::fixed(b, 4096, buckets);
                let mut t = ChainingTable::new(cfg, IdealFn::from_seed(0xAD5E ^ idx as u64))
                    .expect("table");
                run_adversary(&mut t, n, &params, 0x1357 + idx as u64).expect("run")
            }
        };
        table.row([
            idx.to_string(),
            structure.to_string(),
            b.to_string(),
            n.to_string(),
            params.s.to_string(),
            fmt_f(report.certified_tu_lower, 4),
            fmt_f(report.measured_tu, 4),
            fmt_f(regime.tu_lower_bound(b), 4),
            fmt_f(report.max_tq_zone_bound, 4),
            fmt_f(report.mean_slow_share, 4),
        ]);
    };

    let regimes: Vec<(u32, Regime)> = vec![
        (1, Regime::Case1 { c: 1.5 }),
        (2, Regime::Case2 { kappa: 2.0 }),
        (3, Regime::Case3 { c: 0.5 }),
    ];
    for (idx, regime) in regimes {
        if which.is_none_or(|w| w == idx) {
            run_regime(&mut table, regime, idx);
        }
    }
    println!("Theorem 1 adversary harness (per-regime parameters from §2 of the paper).");
    emit("Theorem 1 — certified insertion lower bounds", &table, &args, "exp_lowerbound.csv");
    println!(
        "\nReading: for tq ≈ 1 structures (rows 1–2) the certificate pins tu near 1 —\n\
         the buffer is useless. Row 3's structure spends its slow-zone budget\n\
         (1/β of items) to beat 1, landing right at the Θ(b^(c−1)) frontier;\n\
         its certificate is small BECAUSE its fast-zone traffic is batched."
    );
}
