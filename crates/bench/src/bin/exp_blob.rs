//! **Blob payload path** — write throughput vs payload size, and the
//! zero-copy read path against its copying rivals, for the payload-mode
//! [`KvStore`] and the [`BlobLog`] under it.
//!
//! The u64 table is the *index*; payloads live in an append-only,
//! length-framed, checksummed log (`dxh_extmem::BlobLog`) and the index
//! word holds a tagged offset (see `docs/DURABILITY.md`). Two sweeps
//! over payload size:
//!
//! * **write** — `put_bytes` churn with periodic [`KvStore::sync`]s on
//!   a real directory (every sync is a real fdatasync of the blob log
//!   before the index commit): MB/s and kops/s vs payload size;
//! * **read** — the hot path [`KvStore::get_bytes`] returns a borrow
//!   straight out of the log's cached region (zero payload copies);
//!   compared against the copying consumer (`to_vec` of the borrow)
//!   and the checksum-verifying copy path ([`BlobLog::get_verified`])
//!   on an identically loaded log.
//!
//! The run **verifies the zero-copy claim**, not just its speed: for a
//! sample of keys, repeated `get_bytes` calls must return the *same*
//! data pointer (a view into the one cached region — a copying
//! implementation would hand out fresh allocations), and the gate
//! asserts it. The full run also asserts the verified-copy path is not
//! faster than the zero-copy path at the largest payload (if it were,
//! the zero-copy path would be doing hidden work).
//!
//! Output: an aligned table, `results/exp_blob.csv`, and
//! `results/exp_blob.json` (tracked by `BENCH_BLOB.json` at the repo
//! root; see `docs/BENCHMARKS.md`).
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_blob [--quick]
//! [--seed N]`

use std::time::Instant;

use dxh_analysis::{table::fmt_f, TextTable};
use dxh_bench::{emit, ExpArgs};
use dxh_core::{CoreConfig, KvStore};
use dxh_extmem::{BlobLog, FileBlob};
use dxh_hashfn::SplitMix64;

/// Sync the store after this many `put_bytes` (a realistic ingest
/// cadence: the blob fdatasync + index commit bill amortizes over it).
const SYNC_EVERY: usize = 512;

struct Point {
    payload: usize,
    n: usize,
    write_mb_s: f64,
    write_kops_s: f64,
    read_zero_copy_mops: f64,
    read_copy_mops: f64,
    read_verified_mops: f64,
}

/// Deterministic payload bytes for one key.
fn fill(buf: &mut [u8], rng: &mut SplitMix64) {
    for chunk in buf.chunks_mut(8) {
        let w = rng.next_u64().to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&w[..n]);
    }
}

/// One payload size: write churn through a payload-mode store, then the
/// three read paths over the same resident set.
fn run_once(payload: usize, n: usize, reads: usize, seed: u64) -> Point {
    let dir = std::env::temp_dir().join(format!("dxh-exp-blob-{}-{payload}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let cfg = CoreConfig::lemma5(32, 1024, 2).expect("config");
    let mut store = KvStore::open_payload(&dir, cfg, seed).expect("create payload store");

    let mut rng = SplitMix64::new(seed ^ payload as u64);
    let mut buf = vec![0u8; payload];

    // Write phase: n distinct keys, synced every SYNC_EVERY puts and
    // once at the end, so the measured wall includes the real blob
    // fdatasync + index commit bill.
    let t0 = Instant::now();
    for i in 0..n {
        fill(&mut buf, &mut rng);
        store.put_bytes(i as u64 + 1, &buf).expect("put_bytes");
        if (i + 1) % SYNC_EVERY == 0 {
            store.sync().expect("sync");
        }
    }
    store.sync().expect("final sync");
    let write_s = t0.elapsed().as_secs_f64();

    // Zero-copy verification: repeated reads of one key must serve the
    // same bytes at the same address — a borrowed view into the cached
    // region, not a fresh allocation.
    for probe in [1u64, (n as u64 / 2).max(1), n as u64] {
        let p0 = store.get_bytes(probe).expect("probe").expect("present").as_ptr();
        let p1 = store.get_bytes(probe).expect("probe").expect("present").as_ptr();
        assert!(
            std::ptr::eq(p0, p1),
            "get_bytes(key {probe}) returned different addresses across calls — \
             the hot path is copying"
        );
    }

    // Read keys in a seeded shuffle so the sweep is not a sequential
    // region walk.
    let mut order: Vec<u64> = (1..=n as u64).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, (rng.next_u64() % (i as u64 + 1)) as usize);
    }

    // Path 1: the hot path — get_bytes borrows, zero payload copies.
    let mut sink = 0u64;
    let t0 = Instant::now();
    for r in 0..reads {
        let k = order[r % order.len()];
        let b = store.get_bytes(k).expect("get_bytes").expect("present");
        sink ^= u64::from(b[0]) ^ u64::from(b[b.len() - 1]);
    }
    let zero_s = t0.elapsed().as_secs_f64();

    // Path 2: the copying consumer — same API, plus the to_vec a
    // copy-out interface would impose on every read.
    let t0 = Instant::now();
    for r in 0..reads {
        let k = order[r % order.len()];
        let v = store.get_bytes(k).expect("get_bytes").expect("present").to_vec();
        sink ^= u64::from(v[0]) ^ u64::from(v[v.len() - 1]);
    }
    let copy_s = t0.elapsed().as_secs_f64();
    drop(store);

    // Path 3: the checksum-verifying copy path, on a standalone
    // identically loaded log (BlobLog::get_verified re-hashes the
    // payload on every read — the trust-boundary read).
    let blob_path = dir.join("verified.blob");
    let mut log = BlobLog::create(FileBlob::create(&blob_path).expect("create blob file"))
        .expect("create log");
    let mut rng2 = SplitMix64::new(seed ^ payload as u64);
    let mut offsets = Vec::with_capacity(n);
    for _ in 0..n {
        fill(&mut buf, &mut rng2);
        offsets.push(log.append(&buf).expect("append").0);
    }
    log.sync().expect("blob sync");
    let t0 = Instant::now();
    for r in 0..reads {
        let v = log.get_verified(offsets[r % offsets.len()]).expect("get_verified");
        sink ^= u64::from(v[0]) ^ u64::from(v[v.len() - 1]);
    }
    let verified_s = t0.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    let _ = std::fs::remove_dir_all(&dir);

    let mb = (n * payload) as f64 / (1024.0 * 1024.0);
    Point {
        payload,
        n,
        write_mb_s: mb / write_s,
        write_kops_s: n as f64 / write_s / 1e3,
        read_zero_copy_mops: reads as f64 / zero_s / 1e6,
        read_copy_mops: reads as f64 / copy_s / 1e6,
        read_verified_mops: reads as f64 / verified_s / 1e6,
    }
}

fn main() {
    let args = ExpArgs::parse();
    let seed: u64 =
        args.get("seed").map(|v| v.parse().expect("--seed takes a number")).unwrap_or(0xB10B);
    let sizes: &[usize] =
        if args.quick { &[16, 256, 4096] } else { &[16, 64, 256, 1024, 4096, 16384] };
    // Per-size item count: bounded total bytes, clamped so small
    // payloads still exercise the index depth.
    let budget = args.scale(16 << 20, 2 << 20);
    let reads = args.scale(400_000, 50_000);

    let mut table = TextTable::new([
        "payload B",
        "items",
        "write MB/s",
        "write kops/s",
        "get_bytes Mops/s",
        "copy Mops/s",
        "verified Mops/s",
    ]);
    let mut json_rows = Vec::new();
    let mut points = Vec::new();
    for &payload in sizes {
        let n = (budget / payload.max(1)).clamp(64, 4096);
        let p = run_once(payload, n, reads, seed);
        table.row([
            p.payload.to_string(),
            p.n.to_string(),
            fmt_f(p.write_mb_s, 2),
            fmt_f(p.write_kops_s, 2),
            fmt_f(p.read_zero_copy_mops, 3),
            fmt_f(p.read_copy_mops, 3),
            fmt_f(p.read_verified_mops, 3),
        ]);
        json_rows.push(format!(
            "    {{\"payload\": {}, \"items\": {}, \"write_mb_s\": {:.3}, \
             \"write_kops_s\": {:.3}, \"read_zero_copy_mops\": {:.4}, \
             \"read_copy_mops\": {:.4}, \"read_verified_mops\": {:.4}}}",
            p.payload,
            p.n,
            p.write_mb_s,
            p.write_kops_s,
            p.read_zero_copy_mops,
            p.read_copy_mops,
            p.read_verified_mops
        ));
        points.push(p);
    }
    emit(
        "Blob payload path: write + three read paths vs payload size",
        &table,
        &args,
        "exp_blob.csv",
    );

    // Gates. The pointer-identity check already ran inside every
    // run_once; here the throughput side: at the largest payload the
    // re-hashing verified path must not beat the zero-copy borrow (if
    // it does, get_bytes is doing hidden per-read work).
    let largest = points.last().expect("at least one size");
    assert!(
        largest.read_zero_copy_mops >= largest.read_verified_mops,
        "zero-copy get_bytes ({:.3} Mops/s) slower than the checksum-verifying copy path \
         ({:.3} Mops/s) at {} B payloads",
        largest.read_zero_copy_mops,
        largest.read_verified_mops,
        largest.payload
    );
    println!(
        "\nzero-copy verified: stable borrow addresses across repeated get_bytes, and \
         {:.3} Mops/s >= {:.3} Mops/s (verified-copy) at {} B",
        largest.read_zero_copy_mops, largest.read_verified_mops, largest.payload
    );

    let json = format!(
        "{{\n  \"bench\": \"exp_blob\",\n  \"command\": \"cargo run -p dxh-bench --release \
         --bin exp_blob -- --seed {seed}\",\n  \
         \"note\": \"Payload-mode KvStore on a real directory: writes pay the blob fdatasync \
         before every index commit (sync every {SYNC_EVERY} puts); reads compare the zero-copy \
         get_bytes borrow against the same borrow + to_vec, and against BlobLog::get_verified \
         (re-hashes every read). Pointer-identity of repeated get_bytes is asserted — the hot \
         path serves views into one cached region. Wall-clock is container-local.\",\n  \
         \"params\": {{\"sync_every\": {SYNC_EVERY}, \"reads_per_path\": {reads}, \
         \"seed\": {seed}}},\n  \"points\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = args.out_dir.join("exp_blob.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, &json))
    {
        eprintln!("[json] failed to write {}: {e}", path.display());
    } else {
        println!("[json] {}", path.display());
    }
}
