//! **A1/A2/A3** — the design-choice ablations called out in DESIGN.md §5.
//!
//! * `--which cache` (A1): generic buffering (an LRU pool in front of the
//!   standard chaining table) versus the paper's structural buffering at
//!   equal memory. Theorem 1 says a structure with `tq ≈ 1` cannot insert
//!   in `o(1)` no matter how the memory is used — the pool rows show `tu`
//!   stuck near 1 while the bootstrapped table (same memory) escapes.
//! * `--which hashfn` (A2): the ideal-hash assumption stress-tested —
//!   chaining costs under ideal / universal / multiply-shift / tabulation
//!   families on sequential keys.
//! * `--which costmodel` (A3): footnote 2 sensitivity — the same
//!   bootstrapped run priced under seek-dominated vs strict accounting.
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_ablation -- [--which cache|hashfn|costmodel]`

use dxh_analysis::{table::fmt_f, TextTable};
use dxh_bench::{emit, insert_uniform, ExpArgs};
use dxh_core::{BootstrappedTable, CoreConfig, ExternalDictionary};
use dxh_extmem::{EvictionPolicy, IoCostModel};
use dxh_hashfn::{HashFamily, IdealFamily, MultiplyShiftFamily, TabulationFamily, UniversalFamily};
use dxh_tables::{ChainingConfig, ChainingTable};
use dxh_workloads::measure_tq;
use rand::SeedableRng;

fn ablation_cache(args: &ExpArgs) {
    let b = 64;
    let m = 2048;
    let n = args.scale(100_000, 12_000);
    let samples = args.scale(2000, 400);
    let mut t = TextTable::new([
        "configuration",
        "memory (items)",
        "tu (meas)",
        "tq (meas)",
        "pool hit rate",
    ]);
    // Chaining with LRU pools of growing size (budgeted out of m).
    for frames in [0usize, 8, 16, 24] {
        let mut cfg = ChainingConfig::fixed(b, m, (2 * n / b) as u64);
        cfg.max_load = f64::INFINITY;
        let mut table = ChainingTable::new(cfg, dxh_hashfn::IdealFn::from_seed(1)).unwrap();
        if frames > 0 {
            table.disk_mut().attach_pool(frames, EvictionPolicy::Lru);
        }
        let e = table.disk_stats();
        let keys = insert_uniform(&mut table, n, 2).unwrap();
        table.disk_mut().flush().unwrap();
        let tu = table.disk_stats().since(&e).total(table.cost_model()) as f64 / n as f64;
        let tq = measure_tq(&mut table, &keys, samples, 3).unwrap();
        let hits = table
            .disk()
            .pool_stats()
            .map(|p| fmt_f(p.hit_ratio(), 3))
            .unwrap_or_else(|| "-".into());
        t.row([
            format!("chaining + LRU×{frames}"),
            (frames * b).to_string(),
            fmt_f(tu, 4),
            fmt_f(tq, 4),
            hits,
        ]);
    }
    // The paper's structural buffering at the same memory budget.
    let cfg = CoreConfig::theorem2(b, m, 0.5).unwrap();
    let mut boot = BootstrappedTable::new(cfg, 4).unwrap();
    let keys = insert_uniform(&mut boot, n, 5).unwrap();
    let tu = boot.total_ios() as f64 / n as f64;
    let tq = measure_tq(&mut boot, &keys, samples, 6).unwrap();
    t.row([
        "bootstrapped (β=√b)".to_string(),
        boot.memory_used().to_string(),
        fmt_f(tu, 4),
        fmt_f(tq, 4),
        "-".to_string(),
    ]);
    println!(
        "A1: a generic cache cannot beat Theorem 1. Uniform keys have no reuse\n\
         locality, so hits are rare; worse, a write-back pool UN-FUSES the\n\
         insert's read-modify-write into a miss-read plus a much-later dirty\n\
         eviction write — two seeks under the paper's accounting — so tu gets\n\
         WORSE, not better. Structural buffering at the same memory reaches\n\
         o(1) by paying a 1/β slice of tq instead."
    );
    emit("A1 — generic cache vs structural buffering", &t, args, "exp_ablation_cache.csv");
}

fn run_family<F: HashFamily>(
    family: &F,
    b: usize,
    n: usize,
    samples: usize,
    sequential: bool,
    seed: u64,
) -> (f64, f64)
where
    F::Fn: 'static,
{
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let hash = family.sample(&mut rng);
    let cfg = ChainingConfig::fixed(b, 4 * b + 64, (2 * n / b) as u64);
    let mut t = ChainingTable::new(cfg, hash).unwrap();
    let keys: Vec<u64> = if sequential {
        // Sequential keys: the adversarial-but-realistic input that weak
        // families mishandle.
        (0..n as u64).collect()
    } else {
        let mut rng = dxh_hashfn::SplitMix64::new(seed ^ 1);
        (0..n).map(|_| rng.next_u64() >> 1).collect()
    };
    let e = t.disk_stats();
    for &k in &keys {
        t.insert(k, k).unwrap();
    }
    let tu = t.disk_stats().since(&e).total(t.cost_model()) as f64 / n as f64;
    let tq = measure_tq(&mut t, &keys, samples, seed ^ 2).unwrap();
    (tu, tq)
}

/// Linear hashing uses mask (low-bit) reduction — the configuration where
/// multiply-shift's documented low-bit weakness becomes visible on strided
/// keys (stride-64 keys × odd multiplier ⇒ low 6 hash bits are constant).
fn run_family_masked<F: HashFamily>(
    family: &F,
    b: usize,
    n: usize,
    samples: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let hash = family.sample(&mut rng);
    let cfg = dxh_tables::LinearHashConfig::new(b, 1 << 16);
    let mut t = dxh_tables::LinearHashTable::new(cfg, hash).unwrap();
    let keys: Vec<u64> = (0..n as u64).map(|i| i * 64).collect();
    let e = t.disk_stats();
    for &k in &keys {
        t.insert(k, k).unwrap();
    }
    let tu = t.disk_stats().since(&e).total(t.cost_model()) as f64 / n as f64;
    let tq = measure_tq(&mut t, &keys, samples, seed ^ 2).unwrap();
    (tu, tq)
}

fn ablation_hashfn(args: &ExpArgs) {
    let b = 32;
    let n = args.scale(60_000, 8_000);
    let samples = args.scale(2000, 400);
    let mut t = TextTable::new(["family", "reduction", "keys", "tu (meas)", "tq (meas)"]);
    // Prefix (high-bit) reduction: the workspace default (chaining).
    for sequential in [true, false] {
        let kind = if sequential { "sequential" } else { "random" };
        let (tu, tq) = run_family(&IdealFamily, b, n, samples, sequential, 11);
        t.row(["ideal".to_string(), "prefix".into(), kind.into(), fmt_f(tu, 4), fmt_f(tq, 4)]);
        let (tu, tq) = run_family(&UniversalFamily, b, n, samples, sequential, 12);
        t.row(["universal".to_string(), "prefix".into(), kind.into(), fmt_f(tu, 4), fmt_f(tq, 4)]);
        let (tu, tq) = run_family(&MultiplyShiftFamily, b, n, samples, sequential, 13);
        t.row([
            "multiply-shift".to_string(),
            "prefix".into(),
            kind.into(),
            fmt_f(tu, 4),
            fmt_f(tq, 4),
        ]);
        let (tu, tq) = run_family(&TabulationFamily, b, n, samples, sequential, 14);
        t.row(["tabulation".to_string(), "prefix".into(), kind.into(), fmt_f(tu, 4), fmt_f(tq, 4)]);
    }
    // Mask (low-bit) reduction on strided keys: the failure mode.
    let n_masked = args.scale(4000, 1500);
    let (tu, tq) = run_family_masked(&IdealFamily, b, n_masked, samples.min(500), 15);
    t.row(["ideal".to_string(), "mask".into(), "stride-64".into(), fmt_f(tu, 4), fmt_f(tq, 4)]);
    let (tu, tq) = run_family_masked(&MultiplyShiftFamily, b, n_masked, samples.min(500), 16);
    t.row([
        "multiply-shift".to_string(),
        "mask".into(),
        "stride-64".into(),
        fmt_f(tu, 4),
        fmt_f(tq, 4),
    ]);
    println!(
        "A2: the ideal-hash assumption in practice. With prefix (high-bit)\n\
         reduction every family behaves near-ideally even on sequential keys —\n\
         the Mitzenmacher–Vadhan justification the paper cites. The mask rows\n\
         show the documented exception: multiply-shift's low bits collapse on\n\
         strided keys (tq and tu explode), while the ideal family shrugs."
    );
    emit("A2 — hash-family sensitivity", &t, args, "exp_ablation_hashfn.csv");
}

fn ablation_costmodel(args: &ExpArgs) {
    let b = 64;
    let m = 1024;
    let n = args.scale(100_000, 12_000);
    let mut t = TextTable::new(["structure", "model", "tu", "reads", "writes", "rmws"]);
    for (label, strict) in [("seek-dominated (paper)", false), ("strict", true)] {
        // Bootstrapped.
        let mut cfg = CoreConfig::theorem2(b, m, 0.5).unwrap();
        if strict {
            cfg = cfg.cost_model(IoCostModel::Strict);
        }
        let mut boot = BootstrappedTable::new(cfg, 21).unwrap();
        insert_uniform(&mut boot, n, 22).unwrap();
        let s = boot.disk_stats();
        t.row([
            "bootstrapped c=0.5".to_string(),
            label.to_string(),
            fmt_f(boot.total_ios() as f64 / n as f64, 4),
            s.reads.to_string(),
            s.writes.to_string(),
            s.rmws.to_string(),
        ]);
        // Chaining.
        let mut ccfg = ChainingConfig::fixed(b, m, (2 * n / b) as u64);
        if strict {
            ccfg = ccfg.cost_model(IoCostModel::Strict);
        }
        let mut chain = ChainingTable::new(ccfg, dxh_hashfn::IdealFn::from_seed(23)).unwrap();
        insert_uniform(&mut chain, n, 24).unwrap();
        let s = chain.disk_stats();
        t.row([
            "chaining".to_string(),
            label.to_string(),
            fmt_f(chain.total_ios() as f64 / n as f64, 4),
            s.reads.to_string(),
            s.writes.to_string(),
            s.rmws.to_string(),
        ]);
    }
    println!(
        "A3: footnote 2 sensitivity — strict accounting doubles the chaining\n\
         table's insert cost (its work is all read-modify-write) but barely\n\
         moves the bootstrapped table (its work is streaming reads + writes),\n\
         so the paper's qualitative story is accounting-convention-proof."
    );
    emit("A3 — I/O cost model sensitivity", &t, args, "exp_ablation_costmodel.csv");
}

fn ablation_merge_style(args: &ExpArgs) {
    let b = 64;
    let m = 1024;
    let n = args.scale(100_000, 12_000);
    let mut t =
        TextTable::new(["structure", "merge style", "tu (meas)", "reads", "writes", "rmws"]);
    for rewrite_only in [false, true] {
        let style = if rewrite_only { "rewrite (2 xfers/block)" } else { "in-place (fused rmw)" };
        {
            let c = 0.5;
            let cfg = CoreConfig::theorem2(b, m, c).unwrap().rewrite_merges_only(rewrite_only);
            let mut boot = BootstrappedTable::new(cfg, 41).unwrap();
            insert_uniform(&mut boot, n, 42).unwrap();
            let s = boot.disk_stats();
            t.row([
                format!("bootstrapped c={c}"),
                style.to_string(),
                fmt_f(boot.total_ios() as f64 / n as f64, 4),
                s.reads.to_string(),
                s.writes.to_string(),
                s.rmws.to_string(),
            ]);
        }
        let cfg = CoreConfig::lemma5(b, m, 2).unwrap().rewrite_merges_only(rewrite_only);
        let mut log = dxh_core::LogMethodTable::new(cfg, 43).unwrap();
        insert_uniform(&mut log, n, 44).unwrap();
        let s = log.disk_stats();
        t.row([
            "log-method γ=2".to_string(),
            style.to_string(),
            fmt_f(log.total_ios() as f64 / n as f64, 4),
            s.reads.to_string(),
            s.writes.to_string(),
            s.rmws.to_string(),
        ]);
    }
    println!(
        "A4: merge style — fusing each destination-block update into one\n\
         read-modify-write (footnote 2: one seek) versus rebuilding into a\n\
         fresh region. The fused scan is the paper's own 'merge by scanning\n\
         in parallel' under its own accounting; rewriting costs ~2× on the\n\
         merge-dominated configurations."
    );
    emit("A4 — in-place vs rewrite merges", &t, args, "exp_ablation_merge.csv");
}

fn ablation_memory(args: &ExpArgs) {
    let b = 64;
    let n = args.scale(100_000, 12_000);
    let samples = args.scale(1500, 400);
    let mut t = TextTable::new([
        "m (items)",
        "n/m",
        "boot tu",
        "boot tq",
        "log tu",
        "log tq",
        "chain tu (ref)",
    ]);
    for m in [768usize, 1536, 3072, 6144, 12288] {
        // Bootstrapped at c = 0.5.
        let cfg = CoreConfig::theorem2(b, m, 0.5).unwrap();
        let mut boot = BootstrappedTable::new(cfg, 51).unwrap();
        let keys = insert_uniform(&mut boot, n, 52).unwrap();
        let boot_tu = boot.total_ios() as f64 / n as f64;
        let boot_tq = measure_tq(&mut boot, &keys, samples, 53).unwrap();
        // Log-method.
        let cfg = CoreConfig::lemma5(b, m, 2).unwrap();
        let mut log = dxh_core::LogMethodTable::new(cfg, 54).unwrap();
        let keys = insert_uniform(&mut log, n, 55).unwrap();
        let log_tu = log.total_ios() as f64 / n as f64;
        let log_tq = measure_tq(&mut log, &keys, samples, 56).unwrap();
        // Chaining reference (memory-insensitive: the paper's point).
        let ccfg = ChainingConfig::fixed(b, m, (2 * n / b) as u64);
        let mut chain = ChainingTable::new(ccfg, dxh_hashfn::IdealFn::from_seed(57)).unwrap();
        insert_uniform(&mut chain, n, 58).unwrap();
        let chain_tu = chain.total_ios() as f64 / n as f64;
        t.row([
            m.to_string(),
            fmt_f(n as f64 / m as f64, 0),
            fmt_f(boot_tu, 4),
            fmt_f(boot_tq, 4),
            fmt_f(log_tu, 4),
            fmt_f(log_tq, 4),
            fmt_f(chain_tu, 4),
        ]);
    }
    println!(
        "A5: memory sweep — buffered structures improve as m grows (fewer\n\
         levels, bigger batches: the log(n/m) factor shrinks), while the\n\
         standard table cannot use the extra memory at all (Theorem 1's\n\
         point: its tu is pinned at ≈ 1 regardless of m)."
    );
    emit("A5 — internal memory sweep", &t, args, "exp_ablation_memory.csv");
}

fn main() {
    let args = ExpArgs::parse();
    match args.get("which") {
        Some("cache") => ablation_cache(&args),
        Some("hashfn") => ablation_hashfn(&args),
        Some("costmodel") => ablation_costmodel(&args),
        Some("merge") => ablation_merge_style(&args),
        Some("memory") => ablation_memory(&args),
        _ => {
            ablation_cache(&args);
            ablation_hashfn(&args);
            ablation_costmodel(&args);
            ablation_merge_style(&args);
            ablation_memory(&args);
        }
    }
}
