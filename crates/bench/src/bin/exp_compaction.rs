//! **Space reclamation** — the store's delete/GC/compact lifecycle.
//!
//! The paper's model has no durability story, so this experiment
//! measures what the persistence layer adds around it: how the data
//! file's footprint evolves under insert/delete churn, what a simulated
//! crash strands, how much the reopen-time orphan GC hands back to the
//! allocator, and how close [`KvStore::compact`] brings the file to the
//! live-data footprint. Each phase reports file size, slot accounting
//! (live / free / total), and the phase's accounted I/O where the
//! counters are continuous (they restart at reopen and compaction — the
//! store sits on a fresh accounting disk afterwards).
//!
//! Output: an aligned table, `results/exp_compaction.csv`, and
//! `results/exp_compaction.json` (the shape tracked by
//! `BENCH_COMPACTION.json` at the repo root). The key stream and the
//! store's hash seed both derive from `--seed` (default below), and the
//! JSON echoes it, so a snapshot names the exact run that produced it.
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_compaction [--quick]
//! [--seed N]`

use std::time::Instant;

use dxh_analysis::{table::fmt_f, TextTable};
use dxh_bench::{emit, ExpArgs};
use dxh_core::{CoreConfig, ExternalDictionary, KvStore};
use dxh_hashfn::SplitMix64;

struct Phase {
    name: &'static str,
    items: usize,
    file_bytes: u64,
    slots: u64,
    live: u64,
    free: usize,
    ios: u64,
    wall_ms: f64,
}

fn snapshot(name: &'static str, s: &KvStore, ios: u64, wall_ms: f64) -> Phase {
    let backend = s.table().disk().backend();
    Phase {
        name,
        items: s.len(),
        file_bytes: s
            .data_path()
            .ok()
            .and_then(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .unwrap_or(0),
        slots: backend.slots(),
        live: s.table().disk().live_blocks(),
        free: backend.free_count(),
        ios,
        wall_ms,
    }
}

fn main() {
    let args = ExpArgs::parse();
    let b = 32;
    let m = 1024;
    let n = args.scale(120_000, 12_000);
    // One seed drives the key stream and the store's hash function, so
    // the emitted snapshot is reproducible from its own JSON.
    let seed: u64 =
        args.get("seed").map(|v| v.parse().expect("--seed takes a number")).unwrap_or(0xC0117EC7);
    let cfg = CoreConfig::lemma5(b, m, 2).expect("config");
    let dir = std::env::temp_dir().join(format!("dxh-exp-compaction-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut rng = SplitMix64::new(seed);
    let keys: Vec<u64> = (0..n).map(|_| rng.next_u64() >> 1).collect();
    let mut phases: Vec<Phase> = Vec::new();

    // Phase 1: bulk load + sync.
    let mut store = KvStore::open(&dir, cfg.clone(), seed ^ 0x5704E).expect("create");
    let t0 = Instant::now();
    for &k in &keys {
        store.insert(k, k).expect("insert");
    }
    store.sync().expect("sync");
    phases.push(snapshot("load+sync", &store, store.total_ios(), ms(t0)));

    // Phase 2: delete half, upsert a tenth, sync — markers and shadowed
    // copies bloat the physical footprint.
    let e = store.disk_stats();
    let t0 = Instant::now();
    for &k in keys.iter().step_by(2) {
        assert!(store.delete(k).expect("delete"), "live key deletes");
    }
    for &k in keys.iter().skip(1).step_by(10) {
        store.insert(k, k ^ 1).expect("upsert");
    }
    store.sync().expect("sync");
    let churn_ios = store.disk_stats().since(&e).total(store.cost_model());
    phases.push(snapshot("churn+sync", &store, churn_ios, ms(t0)));

    // Phase 3: unsynced churn — fresh keys, enough to cascade region
    // rebuilds past the manifest's slot count — then crash (Drop never
    // runs; the dead process's LOCK disappears with it).
    for _ in 0..n / 4 {
        let k = rng.next_u64() >> 1;
        store.insert(k, k).expect("insert");
    }
    let lock = store.path().join("LOCK");
    std::mem::forget(store);
    let _ = std::fs::remove_file(lock);

    // Phase 4: reopen — crash recovery walks the manifest's regions and
    // returns every orphaned slot to the free list.
    let t0 = Instant::now();
    let mut store = KvStore::open(&dir, cfg.clone(), seed ^ 0x5704E).expect("reopen after crash");
    phases.push(snapshot("crash+reopen (GC)", &store, 0, ms(t0)));
    let orphans = store.table().disk().backend().free_count();
    assert!(orphans > 0, "GC must hand dead slots back to the allocator");

    // Phase 5: compact — dense rewrite, markers purged, file shrunk.
    let t0 = Instant::now();
    let stats = store.compact().expect("compact");
    let compact_ms = ms(t0);
    phases.push(snapshot("compact", &store, 0, compact_ms));
    assert!(stats.bytes_after < stats.bytes_before, "compaction shrinks the file");

    // Verify: deleted keys absent, survivors present, across a reopen.
    drop(store);
    let mut store = KvStore::open(&dir, cfg, seed ^ 0x5704E).expect("reopen compacted");
    for (i, &k) in keys.iter().enumerate().step_by(97) {
        let got = store.lookup(k).expect("lookup");
        if i % 2 == 0 {
            assert_eq!(got, None, "deleted key {k} stays gone");
        } else {
            assert!(got.is_some(), "surviving key {k} present");
        }
    }
    phases.push(snapshot("verify reopen", &store, store.total_ios(), 0.0));

    let mut table =
        TextTable::new(["phase", "items", "file KiB", "slots", "live", "free", "I/Os", "ms"]);
    let mut json_rows = Vec::new();
    for p in &phases {
        table.row([
            p.name.to_string(),
            p.items.to_string(),
            fmt_f(p.file_bytes as f64 / 1024.0, 1),
            p.slots.to_string(),
            p.live.to_string(),
            p.free.to_string(),
            p.ios.to_string(),
            fmt_f(p.wall_ms, 1),
        ]);
        json_rows.push(format!(
            "    {{\"phase\": \"{}\", \"items\": {}, \"file_bytes\": {}, \"slots\": {}, \
             \"live\": {}, \"free\": {}, \"ios\": {}, \"wall_ms\": {:.3}}}",
            p.name, p.items, p.file_bytes, p.slots, p.live, p.free, p.ios, p.wall_ms
        ));
    }

    println!("Space reclamation: b = {b}, m = {m}, n = {n}");
    println!(
        "reopen GC reclaimed {orphans} dead slots; compact: {} -> {} bytes \
         ({} live items, {} markers purged, {} shadowed copies dropped)",
        stats.bytes_before, stats.bytes_after, stats.live_items, stats.purged, stats.shadowed
    );
    emit("KvStore space-reclamation lifecycle", &table, &args, "exp_compaction.csv");

    let json = format!(
        "{{\n  \"bench\": \"exp_compaction\",\n  \"command\": \"cargo run -p dxh-bench --release --bin exp_compaction -- --seed {seed}\",\n  \
         \"note\": \"File sizes are exact; wall-clock is container-local (trajectory, not absolutes). I/O counters restart at reopen/compact.\",\n  \
         \"params\": {{\"b\": {b}, \"m\": {m}, \"n\": {n}, \"seed\": {seed}}},\n  \
         \"compaction\": {{\"bytes_before\": {}, \"bytes_after\": {}, \"live_items\": {}, \
         \"purged\": {}, \"shadowed\": {}, \"orphans_reclaimed\": {orphans}}},\n  \"phases\": [\n{}\n  ]\n}}\n",
        stats.bytes_before,
        stats.bytes_after,
        stats.live_items,
        stats.purged,
        stats.shadowed,
        json_rows.join(",\n")
    );
    let path = args.out_dir.join("exp_compaction.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, &json))
    {
        eprintln!("[json] failed to write {}: {e}", path.display());
    } else {
        println!("[json] {}", path.display());
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}
