//! **L3/L4** — the bin-ball game lemmas, empirically.
//!
//! Lemma 3 (`sp ≤ 1/3`): with probability ≥ 1 − e^(−µ²s/3) the game
//! costs at least `(1−µ)(1−sp)s − t`. Lemma 4 (`s/2 ≥ t`, `s/2 ≥ 1/p`):
//! with probability 1 − 2^(−Ω(s)) it costs at least `1/(20p)`.
//!
//! Each row plays many games with the optimal adversary and compares the
//! empirical violation rate with the bound.
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_binball [--quick] [--lemma 3|4]`

use dxh_analysis::{table::fmt_f, TextTable};
use dxh_bench::{emit, ExpArgs};
use dxh_lowerbound::BinBallGame;

fn main() {
    let args = ExpArgs::parse();
    let which: Option<u32> = args.get("lemma").and_then(|s| s.parse().ok());
    let trials = args.scale(2000, 300) as u64;

    if which.is_none_or(|w| w == 3) {
        let mu = 0.2;
        let mut t3 = TextTable::new([
            "s",
            "bins r",
            "t",
            "sp",
            "threshold (1−µ)(1−sp)s−t",
            "mean cost",
            "P[cost<thr] (emp)",
            "bound e^(−µ²s/3)",
        ]);
        for (s, r, t) in [
            (100u64, 1000u64, 10u64),
            (300, 3000, 30),
            (1000, 10_000, 100),
            (1000, 3000, 100),
            (3000, 30_000, 300),
        ] {
            let g = BinBallGame { s, r, t };
            assert!(g.lemma3_applies(), "sp must be ≤ 1/3");
            let stats = g.monte_carlo(trials, mu, 0xBB);
            t3.row([
                s.to_string(),
                r.to_string(),
                t.to_string(),
                fmt_f(s as f64 / r as f64, 3),
                fmt_f(g.lemma3_threshold(mu), 1),
                fmt_f(stats.cost.mean(), 1),
                fmt_f(stats.frac_below_lemma3, 4),
                format!("{:.2e}", g.lemma3_tail(mu)),
            ]);
        }
        println!("Lemma 3 (µ = {mu}, {trials} games/row, optimal adversary):");
        emit("bin-ball game — Lemma 3", &t3, &args, "exp_binball_l3.csv");
    }

    if which.is_none_or(|w| w == 4) {
        let mut t4 = TextTable::new([
            "s",
            "bins r",
            "t",
            "threshold r/20",
            "mean cost",
            "min cost",
            "P[cost<thr] (emp)",
        ]);
        for (s, r, t) in
            [(200u64, 50u64, 100u64), (1000, 100, 500), (2000, 100, 1000), (5000, 500, 2500)]
        {
            let g = BinBallGame { s, r, t };
            assert!(g.lemma4_applies());
            let stats = g.monte_carlo(trials, 0.1, 0xBB44);
            t4.row([
                s.to_string(),
                r.to_string(),
                t.to_string(),
                fmt_f(g.lemma4_threshold(), 1),
                fmt_f(stats.cost.mean(), 1),
                fmt_f(stats.cost.min(), 0),
                fmt_f(stats.frac_below_lemma4, 4),
            ]);
        }
        println!("\nLemma 4 ({trials} games/row, optimal adversary):");
        emit("bin-ball game — Lemma 4", &t4, &args, "exp_binball_l4.csv");
    }
    println!(
        "\nReading: empirical violation rates sit at or below the analytic\n\
         tails — the adversary (even playing optimally) cannot push the\n\
         occupied-bin count below the lemmas' floors, which is what forces\n\
         a round of insertions to touch ≈ s distinct blocks in Theorem 1."
    );
}
