//! **K** — the Knuth §6.4 baseline the paper builds on:
//! `tq = tu = 1 + 1/2^Ω(b)` for the standard external hash table.
//!
//! Sweeps block size `b` and load factor `α`, measuring the chaining
//! table's successful-lookup and insertion costs against the Poisson
//! closed forms of `dxh_analysis::knuth`, plus blocked linear probing
//! measurements.
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_knuth [--quick]`

use dxh_analysis::{
    chaining_costs, chaining_insert_amortized, overflow_tail, stats::RunningStats, table::fmt_f,
    TextTable,
};
use dxh_bench::{emit, insert_uniform, ExpArgs};
use dxh_core::ExternalDictionary;
use dxh_hashfn::IdealFn;
use dxh_tables::{ChainingConfig, ChainingTable, LinearProbingConfig, LinearProbingTable};
use dxh_workloads::{measure_tq, measure_tq_unsuccessful, parallel_trials};

fn main() {
    let args = ExpArgs::parse();
    let buckets: u64 = args.scale(512, 128) as u64;
    let samples = args.scale(3000, 500);

    let mut table = TextTable::new([
        "b",
        "α",
        "tq chain (meas)",
        "tq chain (model)",
        "tq⁻ chain (meas)",
        "tq⁻ chain (model)",
        "tu chain (meas)",
        "tu chain (model)",
        "tq probe (meas)",
        "P[overflow]",
    ]);
    for b in [8usize, 16, 32, 64, 128] {
        for alpha in [0.3, 0.5, 0.7, 0.9] {
            let n = (alpha * buckets as f64 * b as f64) as usize;
            let model = chaining_costs(b, alpha);
            let insert_model = chaining_insert_amortized(b, alpha, 32);
            let stats = parallel_trials(args.trials, 0xC0DE, |seed| {
                // Chaining at fixed size (Knuth's setting).
                let cfg = ChainingConfig::fixed(b, 4 * b + 64, buckets);
                let mut chain = ChainingTable::new(cfg, IdealFn::from_seed(seed)).unwrap();
                let e0 = chain.disk_stats();
                let keys = insert_uniform(&mut chain, n, seed).unwrap();
                let tu = chain.disk_stats().since(&e0).total(chain.cost_model()) as f64 / n as f64;
                let tq = measure_tq(&mut chain, &keys, samples, seed ^ 1).unwrap();
                let tq_miss = measure_tq_unsuccessful(&mut chain, samples, seed ^ 5).unwrap();
                // Blocked linear probing at the same (b, α).
                let cfg = LinearProbingConfig::new(b, 4 * b + 64, buckets);
                let mut probe = LinearProbingTable::new(cfg, IdealFn::from_seed(seed ^ 2)).unwrap();
                let keys = insert_uniform(&mut probe, n, seed ^ 3).unwrap();
                let tq_probe = measure_tq(&mut probe, &keys, samples, seed ^ 4).unwrap();
                (tu, tq, tq_miss, tq_probe)
            });
            let mut tu = RunningStats::new();
            let mut tq = RunningStats::new();
            let mut tqm = RunningStats::new();
            let mut tqp = RunningStats::new();
            for (a, b_, miss, c) in stats {
                tu.push(a);
                tq.push(b_);
                tqm.push(miss);
                tqp.push(c);
            }
            table.row([
                b.to_string(),
                fmt_f(alpha, 1),
                fmt_f(tq.mean(), 4),
                fmt_f(model.successful_lookup, 4),
                fmt_f(tqm.mean(), 4),
                fmt_f(model.unsuccessful_lookup, 4),
                fmt_f(tu.mean(), 4),
                fmt_f(insert_model, 4),
                fmt_f(tqp.mean(), 4),
                format!("{:.2e}", overflow_tail(b, alpha)),
            ]);
        }
    }
    println!(
        "Knuth baseline: fixed table of {buckets} buckets, {} trials.\n\
         The 1 + 1/2^Ω(b) phenomenon: the excess over 1 I/O collapses as b grows.",
        args.trials
    );
    emit("standard hash table costs (Knuth §6.4 reference)", &table, &args, "exp_knuth.csv");
}
