//! **Backend sweep** — the Figure-1 tradeoff targets on a real file.
//!
//! The paper's bounds are statements about accounted block transfers,
//! which depend only on `(b, m)`, the hash function, and the workload —
//! not on where the blocks live. This experiment makes that claim
//! empirical: every [`TradeoffTarget`] runs twice with the same seed and
//! key sequence, once on the in-memory simulator ([`MemDisk`]) and once
//! on a real file ([`FileDisk`]), and the harness asserts the I/O
//! counters match *exactly* while reporting the wall-clock price of real
//! `read`/`write`/`lseek` syscalls per accounted I/O.
//!
//! Output: an aligned table, `results/exp_backend.csv`, and
//! `results/exp_backend.json` (the shape tracked by `BENCH_BACKEND.json`
//! at the repo root).
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_backend [--quick]`

use std::time::Instant;

use dxh_analysis::{table::fmt_f, TextTable};
use dxh_bench::{emit, insert_uniform, ExpArgs};
use dxh_core::{DynamicHashTable, ExternalDictionary, TradeoffTarget};
use dxh_extmem::{Disk, FileDisk, IoCostModel, MemDisk, StorageBackend};
use dxh_workloads::measure_tq;

/// One backend run of one target.
struct Run {
    tu: f64,
    tq: f64,
    total_ios: u64,
    insert_ms: f64,
    query_ms: f64,
}

fn run_target<B: StorageBackend>(
    target: TradeoffTarget,
    disk: Disk<B>,
    m: usize,
    n: usize,
    samples: usize,
    seed: u64,
) -> Run {
    let mut table = DynamicHashTable::for_target_on(target, disk, m, seed).expect("build");
    let t0 = Instant::now();
    let keys = insert_uniform(&mut table, n, seed ^ 0x5EED).expect("fill");
    let insert_ms = t0.elapsed().as_secs_f64() * 1e3;
    let tu = table.total_ios() as f64 / n as f64;
    let t1 = Instant::now();
    let tq = measure_tq(&mut table, &keys, samples, seed ^ 0x9A11).expect("tq");
    let query_ms = t1.elapsed().as_secs_f64() * 1e3;
    Run { tu, tq, total_ios: table.total_ios(), insert_ms, query_ms }
}

fn main() {
    let args = ExpArgs::parse();
    let b = 64;
    let m = 1024;
    let n = args.scale(100_000, 10_000);
    let samples = args.scale(2000, 400);
    let seed = 0xBAC;

    let targets: [(&str, TradeoffTarget); 4] = [
        ("chaining (c>1)", TradeoffTarget::QueryOptimal),
        ("bootstrapped c=0.5", TradeoffTarget::InsertOptimal { c: 0.5 }),
        ("bootstrapped ε=0.25", TradeoffTarget::Boundary { eps: 0.25 }),
        ("log-method γ=2", TradeoffTarget::LogMethod { gamma: 2 }),
    ];

    let mut table =
        TextTable::new(["target", "backend", "tu", "tq", "total I/Os", "insert ms", "query ms"]);
    let mut json_rows = Vec::new();
    for (label, target) in targets {
        let mem = run_target(
            target,
            Disk::new(MemDisk::new(b), b, IoCostModel::SeekDominated),
            m,
            n,
            samples,
            seed,
        );
        let file = run_target(
            target,
            Disk::new(FileDisk::temp(b).expect("temp file"), b, IoCostModel::SeekDominated),
            m,
            n,
            samples,
            seed,
        );
        assert_eq!(
            mem.total_ios, file.total_ios,
            "{label}: accounted I/Os must be backend-independent"
        );
        assert!((mem.tq - file.tq).abs() < 1e-12, "{label}: tq must be backend-independent");
        for (backend, r) in [("mem", &mem), ("file", &file)] {
            table.row([
                label.to_string(),
                backend.to_string(),
                fmt_f(r.tu, 4),
                fmt_f(r.tq, 4),
                r.total_ios.to_string(),
                fmt_f(r.insert_ms, 1),
                fmt_f(r.query_ms, 1),
            ]);
            json_rows.push(format!(
                "    {{\"target\": \"{label}\", \"backend\": \"{backend}\", \
                 \"tu\": {:.6}, \"tq\": {:.6}, \"total_ios\": {}, \
                 \"insert_ms\": {:.3}, \"query_ms\": {:.3}}}",
                r.tu, r.tq, r.total_ios, r.insert_ms, r.query_ms
            ));
        }
    }

    println!("Backend sweep: b = {b}, m = {m}, n = {n}, {samples} query samples");
    println!("(I/O counts and tq asserted identical across backends; only wall-clock differs)");
    emit("tradeoff targets on MemDisk vs FileDisk", &table, &args, "exp_backend.csv");

    let json = format!(
        "{{\n  \"bench\": \"exp_backend\",\n  \"command\": \"cargo run -p dxh-bench --release --bin exp_backend\",\n  \
         \"note\": \"MemDisk vs FileDisk twins, identical seeds; accounted I/Os asserted equal. Wall-clock is container-local; use for trajectory, not absolutes.\",\n  \
         \"params\": {{\"b\": {b}, \"m\": {m}, \"n\": {n}, \"samples\": {samples}}},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = args.out_dir.join("exp_backend.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, &json))
    {
        eprintln!("[json] failed to write {}: {e}", path.display());
    } else {
        println!("[json] {}", path.display());
    }
}
