//! **C** — hashing versus comparison-based search, quantified.
//!
//! The paper's opening argument: in external memory, hash tables answer
//! point lookups in `1 + 1/2^Ω(b)` I/Os while comparison-based trees pay
//! `Θ(log_B n)`. This experiment puts the external B+-tree next to every
//! hash structure on identical workloads, and also shows the one thing
//! the tree keeps: ordered range scans.
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_comparison [--quick]`

use dxh_analysis::{table::fmt_f, TextTable};
use dxh_bench::{emit, insert_uniform, ExpArgs};
use dxh_btree::{BPlusTree, BPlusTreeConfig};
use dxh_core::{DynamicHashTable, ExternalDictionary, TradeoffTarget};
use dxh_workloads::{measure_tq, measure_tq_unsuccessful};

fn main() {
    let args = ExpArgs::parse();
    let b = 64;
    let m = 1024;
    let n = args.scale(150_000, 15_000);
    let samples = args.scale(2500, 500);

    let mut t = TextTable::new([
        "structure",
        "tu (insert)",
        "tq (hit)",
        "tq (miss)",
        "range 1k (I/Os)",
        "theory tq",
    ]);

    // The B+-tree.
    let mut tree = BPlusTree::new(BPlusTreeConfig::new(b, m)).unwrap();
    let keys = insert_uniform(&mut tree, n, 0xB7EE).unwrap();
    let tu = tree.total_ios() as f64 / n as f64;
    let tq = measure_tq(&mut tree, &keys, samples, 1).unwrap();
    let tq_miss = measure_tq_unsuccessful(&mut tree, samples, 2).unwrap();
    // Range scan: a window expected to contain ~1000 keys. Keys are
    // uniform over [0, 2^63); scale the window accordingly.
    let width = ((1u64 << 62) / n as u64) * 2000;
    let e = tree.disk_stats();
    let got = tree.range(1 << 60, (1 << 60) + width).unwrap();
    let scan_ios = tree.disk_stats().since(&e).total(tree.cost_model());
    let h = tree.height();
    t.row([
        format!("B+-tree (height {h})"),
        fmt_f(tu, 4),
        fmt_f(tq, 4),
        fmt_f(tq_miss, 4),
        format!("{scan_ios} ({} items)", got.len()),
        format!("log_B n = {}", h + 1),
    ]);

    // The hash structures.
    for (label, target, theory) in [
        ("chaining", TradeoffTarget::QueryOptimal, "1 + 1/2^Ω(b)"),
        ("bootstrapped c=0.5", TradeoffTarget::InsertOptimal { c: 0.5 }, "1 + O(1/√b)"),
        ("log-method γ=2", TradeoffTarget::LogMethod { gamma: 2 }, "O(log(n/m))"),
    ] {
        let mut table = DynamicHashTable::for_target(target, b, m, 0xCAFE).unwrap();
        let keys = insert_uniform(&mut table, n, 3).unwrap();
        let tu = table.total_ios() as f64 / n as f64;
        let tq = measure_tq(&mut table, &keys, samples, 4).unwrap();
        let tq_miss = measure_tq_unsuccessful(&mut table, samples, 5).unwrap();
        t.row([
            label.to_string(),
            fmt_f(tu, 4),
            fmt_f(tq, 4),
            fmt_f(tq_miss, 4),
            "n/a (unordered)".to_string(),
            theory.to_string(),
        ]);
    }

    println!(
        "Hashing vs comparison search: b = {b}, m = {m}, n = {n}.\n\
         The B+-tree pays its height on every operation; hashing answers\n\
         point queries in ≈ 1 I/O — the premise of the whole paper — and\n\
         the buffered variants then trade a hair of that for o(1) inserts.\n\
         The tree's consolation prize: ordered scans at ~1 I/O per b items."
    );
    emit("hashing vs B+-tree", &t, &args, "exp_comparison.csv");
}
