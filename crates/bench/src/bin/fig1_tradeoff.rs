//! **Figure 1** — the query–insertion tradeoff, regenerated.
//!
//! For each construction we measure `(tq, tu)` on `n` uniform random
//! insertions and overlay the paper's bound curves:
//!
//! * chaining — the `tq = 1 + 1/2^Ω(b)` endpoint, where Theorem 1 case 1
//!   pins `tu ≥ 1 − O(b^{-(c−1)/4})`;
//! * bootstrapped, `c ∈ {0.25, 0.5, 0.75}` — the `1 + Θ(1/b^c)`, `c < 1`
//!   frontier with matching bounds `Θ(b^{c−1})`;
//! * bootstrapped ε-form — the `tq = 1 + Θ(1/b)` boundary, `tu = ε`;
//! * log-method — maximal buffering: `tu = o(1)` but `tq = Θ(log(n/m))`.
//!
//! Run: `cargo run -p dxh-bench --release --bin fig1_tradeoff [--quick]`

use dxh_analysis::{stats::RunningStats, table::fmt_f, theorem1_tu_lower, TextTable};
use dxh_bench::{emit, insert_uniform, measure_target, ExpArgs, TradeoffPoint};
use dxh_core::{ExternalDictionary, TradeoffTarget};
use dxh_hashfn::IdealFn;
use dxh_tables::{ExtendibleConfig, ExtendibleTable, LinearHashConfig, LinearHashTable};
use dxh_workloads::{measure_tq, parallel_trials};

fn main() {
    let args = ExpArgs::parse();
    let b = 64;
    let m = 1024;
    let n = args.scale(200_000, 20_000);
    let samples = args.scale(4000, 800);

    struct Series {
        label: String,
        target: TradeoffTarget,
        tq_theory: String,
        tu_theory: String,
        tu_lower: String,
    }
    let bf = b as f64;
    let mut series = vec![Series {
        label: "chaining (c>1)".into(),
        target: TradeoffTarget::QueryOptimal,
        tq_theory: "1 + 1/2^Ω(b)".into(),
        tu_theory: "1 + 1/2^Ω(b)".into(),
        tu_lower: fmt_f(theorem1_tu_lower(b, 2.0), 3),
    }];
    for c in [0.25, 0.5, 0.75] {
        series.push(Series {
            label: format!("bootstrapped c={c}"),
            target: TradeoffTarget::InsertOptimal { c },
            tq_theory: format!("1+{}", fmt_f(bf.powf(-c), 4)),
            tu_theory: format!("~{}", fmt_f(bf.powf(c - 1.0), 4)),
            tu_lower: fmt_f(theorem1_tu_lower(b, c), 4),
        });
    }
    series.push(Series {
        label: "bootstrapped ε=0.25".into(),
        target: TradeoffTarget::Boundary { eps: 0.25 },
        tq_theory: format!("1+O(1/{b})"),
        tu_theory: "~0.25·K".into(),
        tu_lower: "Ω(1)".into(),
    });
    series.push(Series {
        label: "log-method γ=2".into(),
        target: TradeoffTarget::LogMethod { gamma: 2 },
        tq_theory: format!("O(log₂({n}/{m}))"),
        tu_theory: "o(1)".into(),
        tu_lower: "-".into(),
    });

    let mut table = TextTable::new([
        "structure",
        "tq (measured)",
        "tq (paper)",
        "tu (measured)",
        "tu (paper UB)",
        "tu (Thm1 LB)",
    ]);

    // Classic dynamic schemes sit at the same (≈1, ≈1) endpoint as
    // chaining — load-factor maintenance costs only O(1/b) amortized, as
    // the paper's introduction remarks. Note: unlike the other rows,
    // their in-memory state grows with n (extendible hashing's directory
    // holds ~2n/b pointers; linear hashing keeps a segment table), so
    // they get a budget of Θ(n/b) items — an honest extra cost the
    // budget accounting makes visible.
    let m_classics = (8 * n / b).max(m);
    let classics = parallel_trials(args.trials, 0xF162, |seed| {
        let mut ext =
            ExtendibleTable::new(ExtendibleConfig::new(b, m_classics), IdealFn::from_seed(seed))
                .expect("extendible");
        let keys = insert_uniform(&mut ext, n, seed).expect("fill");
        let ext_point = TradeoffPoint {
            tu: ext.disk_stats().total(ext.cost_model()) as f64 / n as f64,
            tq: measure_tq(&mut ext, &keys, samples, seed ^ 5).expect("tq"),
            memory: ext.memory_used(),
        };
        let mut lh = LinearHashTable::new(
            LinearHashConfig::new(b, m_classics).max_load(0.5),
            IdealFn::from_seed(seed),
        )
        .expect("linear hashing");
        let keys = insert_uniform(&mut lh, n, seed ^ 6).expect("fill");
        let lh_point = TradeoffPoint {
            tu: lh.disk_stats().total(lh.cost_model()) as f64 / n as f64,
            tq: measure_tq(&mut lh, &keys, samples, seed ^ 7).expect("tq"),
            memory: lh.memory_used(),
        };
        (ext_point, lh_point)
    });

    for s in &series {
        let trials = args.trials;
        let points = parallel_trials(trials, 0xF161, |seed| {
            measure_target(s.target, b, m, n, samples, seed).expect("measurement failed")
        });
        let mut tu = RunningStats::new();
        let mut tq = RunningStats::new();
        for p in &points {
            tu.push(p.tu);
            tq.push(p.tq);
        }
        table.row([
            s.label.clone(),
            fmt_f(tq.mean(), 4),
            s.tq_theory.clone(),
            fmt_f(tu.mean(), 4),
            s.tu_theory.clone(),
            s.tu_lower.clone(),
        ]);
    }
    for (label, pick) in [("extendible (m=Θ(n/b))", 0usize), ("linear hash (m=Θ(n/b))", 1usize)] {
        let mut tu = RunningStats::new();
        let mut tq = RunningStats::new();
        for (e, l) in &classics {
            let p = if pick == 0 { e } else { l };
            tu.push(p.tu);
            tq.push(p.tq);
        }
        table.row([
            label.to_string(),
            fmt_f(tq.mean(), 4),
            "1 + 1/2^Ω(b)".to_string(),
            fmt_f(tu.mean(), 4),
            "1 + O(1/b)".to_string(),
            fmt_f(theorem1_tu_lower(b, 2.0), 3),
        ]);
    }
    println!("Figure 1 reproduction: b = {b}, m = {m}, n = {n}, {} trials", args.trials);
    println!("(expectations are SHAPE, constants fixed at 1 — see EXPERIMENTS.md)");
    emit("query-insertion tradeoff (Figure 1)", &table, &args, "fig1_tradeoff.csv");

    // The crossover story in one line: who gets to insert in o(1)?
    println!(
        "\nReading: chaining sits at (≈1, ≈1); the bootstrapped points trace the\n\
         c<1 frontier (tq→1 as tu→1 like b^(c−1)); the log-method buys tu = o(1)\n\
         at tq = Θ(log(n/m)) — exactly the paper's Figure 1."
    );
}
