//! **Group-commit service** — throughput and syncs-per-op of the
//! concurrent sharded [`ShardedKvStore`] versus writer-thread count.
//!
//! The paper buys `tu < 1` by buffering updates; this experiment
//! measures the durability-layer analogue: writers never fsync — each
//! shard's dedicated committer applies batches continuously, and every
//! sync round commits all shards' batches with **one** fsync of the
//! service-wide commit log (see `docs/COMMIT_PATH.md`). Two sweeps:
//!
//! * **threads** (single shard): writer count vs wall-clock throughput,
//!   sync rounds per acknowledged op, and the largest batch one round
//!   carried — the pure group-commit effect, no routing dilution;
//! * **shards** (8 writers): partitioning must be a scaling axis, not a
//!   liability — the shared log keeps the sync bill flat while the
//!   aggregate of the shards' in-memory tables absorbs a resident set
//!   that one shard's table has to spill to disk levels;
//! * **hot-key coalescing** (8 writers × 8 shards, checkpoints on): a
//!   Zipf(θ) hot-key write stream against its uncoalesced twin (same op
//!   count, all keys distinct). The newest-wins buffer absorbs the hot
//!   duplicates, so the zipf column must not lose to the distinct one —
//!   and with checkpoint rotations live, a delta harden must average
//!   ≤ 1/8 of a full table-sized manifest rewrite.
//!
//! Writers replay disjoint-namespace [`ConcurrentChurn`] traces (a
//! read-mixed churn) through pipelined `submit` chunks — the shape a
//! real ingest pipeline has — against a real-directory deployment
//! (every sync is a real fsync). Each sweep runs [`TRIALS`] interleaved
//! passes and reports per-point bests, de-correlating shared-host noise
//! from the configuration under test.
//!
//! The run **asserts** the acceptance bars. Full: syncs-per-op < 1/8
//! with a largest batch ≥ 8 at 8 writers; throughput non-decreasing in
//! shard count at 8 writers; syncs/op at 8 shards ≤ 2× at 1 shard.
//! `--quick` (the CI smoke) shortens the workload, asserts batching
//! materializes, and fails if 8 shards underperform 1 shard at the
//! same writer count. Output: aligned tables,
//! `results/exp_service.csv`, and `results/exp_service.json` (tracked
//! by `BENCH_SERVICE.json` at the repo root; see `docs/BENCHMARKS.md`).
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_service [--quick]
//! [--seed N]`

use std::time::Instant;

use dxh_analysis::{table::fmt_f, TextTable};
use dxh_bench::{emit, ExpArgs};
use dxh_core::{CoreConfig, ShardedKvStore, WriteOp};
use dxh_workloads::{ConcurrentChurn, Op, Trace, ZipfWrites};

/// Ops each writer pipelines per `submit` call (a small ingest buffer).
const CHUNK: usize = 32;

/// Interleaved passes per sweep; each point reports its best run.
const TRIALS: usize = 5;

struct Point {
    threads: usize,
    shards: usize,
    ops: u64,
    wall_ms: f64,
    kops_per_s: f64,
    syncs_per_op: f64,
    sync_rounds: u64,
    shard_syncs: u64,
    avg_batch: f64,
    largest_batch: u64,
}

/// Runs a whole sweep [`TRIALS`] times and keeps each point's best run.
///
/// Shared-host wall-clock noise is *time-correlated* — a neighbour's
/// burst slows everything for tens of milliseconds — so repeating one
/// point back to back can land every trial in the same pit. Interleaved
/// passes de-correlate the noise from the configuration: a slow window
/// taxes every point of that pass roughly equally, and the per-point
/// best across passes estimates capability, which is what the scaling
/// gates compare.
fn sweep<F: Fn(usize) -> Point>(configs: &[usize], run: F) -> Vec<Point> {
    let mut best: Vec<Option<Point>> = configs.iter().map(|_| None).collect();
    for _ in 0..TRIALS {
        for (slot, &c) in best.iter_mut().zip(configs) {
            let p = run(c);
            if slot.as_ref().is_none_or(|b| p.kops_per_s > b.kops_per_s) {
                *slot = Some(p);
            }
        }
    }
    best.into_iter().map(|p| p.expect("TRIALS >= 1")).collect()
}

/// Drives `threads` writers over a fresh service and measures one run.
fn run_once(threads: usize, shards: usize, ops_per_thread: usize, seed: u64) -> Point {
    let dir = std::env::temp_dir()
        .join(format!("dxh-exp-service-{}-{threads}x{shards}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = CoreConfig::lemma5(32, 1024, 2).expect("config");
    let svc = ShardedKvStore::open(&dir, shards, cfg, seed).expect("create service");
    // 40% inserts / 15% deletes / 45% lookups — a read-mixed churn. The
    // resident key set dwarfs one shard's in-memory table, so single-
    // shard lookups walk deep on-disk levels while the aggregate
    // buffering of many shards keeps each partition shallow or fully
    // in memory — the apply-side advantage partitioning is supposed
    // to buy (see docs/BENCHMARKS.md).
    let workload = ConcurrentChurn::new(threads, ops_per_thread, 0.4, 0.15).expect("churn shape");
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let svc = &svc;
            let trace = workload.thread_trace(t, seed);
            scope.spawn(move || {
                let mut chunk: Vec<WriteOp> = Vec::with_capacity(CHUNK);
                for op in &trace.ops {
                    match *op {
                        Op::Insert(k, v) => chunk.push(WriteOp::Put(k, v)),
                        Op::Delete(k) => chunk.push(WriteOp::Delete(k)),
                        Op::Lookup(k) => {
                            let _ = svc.get(k).expect("lookup");
                            continue;
                        }
                    }
                    if chunk.len() >= CHUNK {
                        svc.submit(&chunk).expect("submit");
                        chunk.clear();
                    }
                }
                if !chunk.is_empty() {
                    svc.submit(&chunk).expect("submit tail");
                }
            });
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = svc.stats();
    svc.sync_all().expect("sync_all");
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    Point {
        threads,
        shards,
        ops: stats.committed_ops,
        wall_ms,
        kops_per_s: stats.committed_ops as f64 / wall_ms,
        syncs_per_op: stats.syncs_per_op(),
        sync_rounds: stats.sync_rounds,
        shard_syncs: stats.shard_syncs,
        avg_batch: if stats.committed_batches == 0 {
            0.0
        } else {
            stats.committed_ops as f64 / stats.committed_batches as f64
        },
        largest_batch: stats.largest_batch,
    }
}

/// One run of the hot-key coalescing comparison (sweep 3).
struct CoalescePoint {
    mode: &'static str,
    ops: u64,
    wall_ms: f64,
    kops_per_s: f64,
    /// Ops absorbed by the newest-wins buffer (saved table work).
    coalesced: u64,
    /// Incremental manifest frames committed by checkpoint rotations.
    delta_commits: u64,
    /// Average bytes per delta frame.
    avg_delta_b: u64,
    /// Average bytes of the **final** full manifests (table-sized, from
    /// the closing marker-setting `sync_all`) — what every checkpoint
    /// harden used to pay before incremental deltas.
    avg_full_b: u64,
}

/// Zipf universe per writer thread — small enough that a 32-op chunk
/// carries hot-key duplicates for the buffer to absorb.
const ZIPF_UNIVERSE: usize = 64;

/// Zipf skew: rank 0 draws ~20% of all writes at θ = 0.99, `u = 64`.
const ZIPF_THETA: f64 = 0.99;

/// Commit-log bytes per shard between checkpoint rotations in sweep 3 —
/// low enough that a run pays dozens of rotations, so the delta-vs-full
/// manifest gate measures live behaviour rather than an idle path.
const COALESCE_CKPT_LOG_BYTES: u64 = 64 << 10;

/// Drives the hot-key zipf stream (`hot`) or its uncoalesced
/// distinct-key twin over a fresh 8×8 service with checkpoint rotations
/// enabled, and measures throughput, coalescing, and manifest-commit
/// shares.
fn run_coalesce_once(
    threads: usize,
    shards: usize,
    ops_per_thread: usize,
    seed: u64,
    hot: bool,
) -> CoalescePoint {
    let mode = if hot { "zipf-hot" } else { "distinct" };
    let dir =
        std::env::temp_dir().join(format!("dxh-exp-service-co-{}-{mode}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = CoreConfig::lemma5(32, 1024, 2).expect("config");
    let svc = ShardedKvStore::open(&dir, shards, cfg, seed).expect("create service");
    svc.set_checkpoint_log_bytes(COALESCE_CKPT_LOG_BYTES);
    let zipf =
        ZipfWrites::new(threads, ops_per_thread, ZIPF_UNIVERSE, ZIPF_THETA).expect("zipf shape");
    // The uncoalesced twin: same op count, all-distinct fresh keys —
    // the buffer has nothing to absorb.
    let distinct = ConcurrentChurn::new(threads, ops_per_thread, 1.0, 0.0).expect("churn shape");
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let svc = &svc;
            let trace: Trace =
                if hot { zipf.thread_trace(t, seed) } else { distinct.thread_trace(t, seed) };
            scope.spawn(move || {
                let mut chunk: Vec<WriteOp> = Vec::with_capacity(CHUNK);
                for op in &trace.ops {
                    match *op {
                        Op::Insert(k, v) => chunk.push(WriteOp::Put(k, v)),
                        Op::Delete(k) => chunk.push(WriteOp::Delete(k)),
                        Op::Lookup(_) => continue,
                    }
                    if chunk.len() >= CHUNK {
                        svc.submit(&chunk).expect("submit");
                        chunk.clear();
                    }
                }
                if !chunk.is_empty() {
                    svc.submit(&chunk).expect("submit tail");
                }
            });
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mid = svc.stats();
    svc.sync_all().expect("sync_all");
    let end = svc.stats();
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    // The closing sync_all rewrites every shard's manifest in full at
    // final table size — the per-harden price the delta path replaces.
    let final_fulls = end.manifest_full_commits - mid.manifest_full_commits;
    CoalescePoint {
        mode,
        ops: mid.committed_ops,
        wall_ms,
        kops_per_s: mid.committed_ops as f64 / wall_ms,
        coalesced: mid.coalesced_ops,
        delta_commits: mid.manifest_delta_commits,
        avg_delta_b: mid.manifest_delta_bytes.checked_div(mid.manifest_delta_commits).unwrap_or(0),
        avg_full_b: (end.manifest_full_bytes - mid.manifest_full_bytes)
            .checked_div(final_fulls)
            .unwrap_or(0),
    }
}

fn push_row(table: &mut TextTable, json: &mut Vec<String>, p: &Point) {
    table.row([
        p.threads.to_string(),
        p.shards.to_string(),
        p.ops.to_string(),
        fmt_f(p.wall_ms, 1),
        fmt_f(p.kops_per_s, 1),
        fmt_f(p.syncs_per_op, 4),
        p.sync_rounds.to_string(),
        p.shard_syncs.to_string(),
        fmt_f(p.avg_batch, 2),
        p.largest_batch.to_string(),
    ]);
    json.push(format!(
        "    {{\"threads\": {}, \"shards\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \
         \"kops_per_s\": {:.2}, \"syncs_per_op\": {:.5}, \"sync_rounds\": {}, \
         \"shard_syncs\": {}, \"avg_batch\": {:.2}, \"largest_batch\": {}}}",
        p.threads,
        p.shards,
        p.ops,
        p.wall_ms,
        p.kops_per_s,
        p.syncs_per_op,
        p.sync_rounds,
        p.shard_syncs,
        p.avg_batch,
        p.largest_batch
    ));
}

fn main() {
    let args = ExpArgs::parse();
    let seed: u64 =
        args.get("seed").map(|v| v.parse().expect("--seed takes a number")).unwrap_or(0x5E41_11CE);
    // Sized so the workload's resident key set exceeds one shard's
    // in-memory hash table (cfg below: 512 items) by a wide margin:
    // partitioning then buys real apply-side work — a single shard pays
    // memory-overflow migrations and disk-level lookups that the
    // aggregate buffering of 8 shards absorbs. See docs/BENCHMARKS.md.
    let ops_per_thread = args.scale(12000, 8000);
    let thread_sweep: &[usize] = if args.quick { &[1, 2, 4] } else { &[1, 2, 4, 8, 16] };
    // The quick smoke skips the interior shard counts but keeps both
    // ends: its gate is "8 shards must not underperform 1 shard".
    let shard_sweep: &[usize] = if args.quick { &[1, 2, 8] } else { &[1, 2, 4, 8] };

    let header = [
        "threads",
        "shards",
        "ops",
        "wall ms",
        "kops/s",
        "syncs/op",
        "rounds",
        "hardens",
        "avg batch",
        "max",
    ];
    let mut json_rows = Vec::new();

    // Sweep 1: writers vs one shard — the pure group-commit effect.
    let mut threads_table = TextTable::new(header);
    let mut eight_threads: Option<(f64, u64)> = None;
    let mut four_threads: Option<(f64, u64)> = None;
    for p in sweep(thread_sweep, |threads| run_once(threads, 1, ops_per_thread, seed)) {
        if p.threads >= 8 && eight_threads.is_none() {
            eight_threads = Some((p.syncs_per_op, p.largest_batch));
        }
        if p.threads == 4 {
            four_threads = Some((p.syncs_per_op, p.largest_batch));
        }
        push_row(&mut threads_table, &mut json_rows, &p);
    }
    emit("Group commit: writer threads vs one shard", &threads_table, &args, "exp_service.csv");

    // Sweep 2: shards vs a fixed writer count. Both modes pin 8
    // writers: that is where group commit has real batches to share
    // (the 4-writer wave splits too thin across 8 shards for the
    // scaling comparison to measure anything but scheduler noise).
    let fixed_threads = 8;
    let mut shards_table = TextTable::new(header);
    let shard_points: Vec<Point> =
        sweep(shard_sweep, |shards| run_once(fixed_threads, shards, ops_per_thread, seed));
    for p in &shard_points {
        push_row(&mut shards_table, &mut json_rows, p);
    }
    emit(
        "Group commit: shards vs a fixed writer count",
        &shards_table,
        &args,
        "exp_service_shards.csv",
    );

    // Sharding gates: coalesced sync rounds must make shard count a
    // scaling axis, not a liability. The quick smoke compares the two
    // ends; the full run holds the whole curve non-decreasing (within a
    // small wall-clock noise margin) and bounds the sync-bill growth.
    {
        let one = shard_points.first().expect("sweep includes 1 shard");
        let eight = shard_points.last().expect("sweep includes 8 shards");
        assert_eq!((one.shards, eight.shards), (1, 8), "sweep spans 1..=8 shards");
        assert!(
            eight.kops_per_s >= one.kops_per_s,
            "{fixed_threads} writers: 8 shards ({:.1} kops/s) must not underperform 1 shard \
             ({:.1} kops/s)",
            eight.kops_per_s,
            one.kops_per_s
        );
        if !args.quick {
            for w in shard_points.windows(2) {
                assert!(
                    w[1].kops_per_s >= w[0].kops_per_s * 0.97,
                    "throughput must be non-decreasing in shard count at {fixed_threads} \
                     writers: {} shards {:.1} kops/s -> {} shards {:.1} kops/s",
                    w[0].shards,
                    w[0].kops_per_s,
                    w[1].shards,
                    w[1].kops_per_s
                );
            }
            assert!(
                eight.syncs_per_op <= 2.0 * one.syncs_per_op,
                "coalescing must keep the sync bill flat: syncs/op {:.4} at 8 shards vs \
                 {:.4} at 1 shard",
                eight.syncs_per_op,
                one.syncs_per_op
            );
            println!(
                "\nsharding: kops/s {} -> {} across 1..8 shards (non-decreasing), syncs/op \
                 {:.4} -> {:.4} (<= 2x)",
                fmt_f(one.kops_per_s, 1),
                fmt_f(eight.kops_per_s, 1),
                one.syncs_per_op,
                eight.syncs_per_op
            );
        } else {
            println!(
                "\nsharding smoke: {:.1} kops/s at 8 shards >= {:.1} kops/s at 1 shard \
                 ({fixed_threads} writers)",
                eight.kops_per_s, one.kops_per_s
            );
        }
    }

    // Sweep 3: hot-key coalescing vs the uncoalesced distinct twin at
    // the headline 8×8 configuration, checkpoint rotations live. Same
    // interleaved best-of-TRIALS discipline as the other sweeps.
    let mut coalesce_table = TextTable::new([
        "mode",
        "ops",
        "wall ms",
        "kops/s",
        "coalesced",
        "coal/op",
        "deltas",
        "avg delta B",
        "avg full B",
    ]);
    let co_points: Vec<CoalescePoint> = {
        let mut best: [Option<CoalescePoint>; 2] = [None, None];
        for _ in 0..TRIALS {
            for (slot, hot) in best.iter_mut().zip([true, false]) {
                let p = run_coalesce_once(fixed_threads, 8, ops_per_thread, seed, hot);
                if slot.as_ref().is_none_or(|b| p.kops_per_s > b.kops_per_s) {
                    *slot = Some(p);
                }
            }
        }
        best.into_iter().map(|p| p.expect("TRIALS >= 1")).collect()
    };
    let mut co_json = Vec::new();
    for p in &co_points {
        coalesce_table.row([
            p.mode.to_string(),
            p.ops.to_string(),
            fmt_f(p.wall_ms, 1),
            fmt_f(p.kops_per_s, 1),
            p.coalesced.to_string(),
            fmt_f(p.coalesced as f64 / p.ops as f64, 3),
            p.delta_commits.to_string(),
            p.avg_delta_b.to_string(),
            p.avg_full_b.to_string(),
        ]);
        co_json.push(format!(
            "      {{\"mode\": \"{}\", \"ops\": {}, \"wall_ms\": {:.3}, \"kops_per_s\": {:.2}, \
             \"coalesced_ops\": {}, \"manifest_delta_commits\": {}, \"avg_delta_bytes\": {}, \
             \"avg_full_manifest_bytes\": {}}}",
            p.mode,
            p.ops,
            p.wall_ms,
            p.kops_per_s,
            p.coalesced,
            p.delta_commits,
            p.avg_delta_b,
            p.avg_full_b
        ));
    }
    emit(
        "Hot-key coalescing: zipf writes vs the uncoalesced distinct twin",
        &coalesce_table,
        &args,
        "exp_service_coalesce.csv",
    );

    // Coalescing gates (quick and full — this pair IS the CI smoke's
    // subject): the zipf mix must not lose to its uncoalesced twin, the
    // buffer must have actually absorbed work on it (and had nothing to
    // absorb on the twin), and a checkpoint delta harden must cost at
    // most 1/8 of a table-sized full manifest rewrite.
    {
        let (hot, distinct) = (&co_points[0], &co_points[1]);
        assert_eq!((hot.mode, distinct.mode), ("zipf-hot", "distinct"));
        assert!(
            hot.kops_per_s >= distinct.kops_per_s,
            "coalesced hot-key writes ({:.1} kops/s) must not lose to the uncoalesced \
             distinct twin ({:.1} kops/s)",
            hot.kops_per_s,
            distinct.kops_per_s
        );
        assert!(hot.coalesced > 0, "the zipf mix must exercise the coalescing buffer");
        assert_eq!(
            distinct.coalesced, 0,
            "the distinct twin has no duplicate keys for the buffer to absorb"
        );
        assert!(
            distinct.delta_commits > 0,
            "checkpoint rotations must commit incremental deltas during the run"
        );
        assert!(
            distinct.avg_delta_b * 8 <= distinct.avg_full_b,
            "a delta harden must average <= 1/8 of a full manifest rewrite: \
             {} B delta vs {} B full",
            distinct.avg_delta_b,
            distinct.avg_full_b
        );
        println!(
            "\ncoalescing: zipf-hot {:.1} kops/s >= distinct {:.1} kops/s ({} ops absorbed); \
             delta harden {} B <= 1/8 of {} B full manifest",
            hot.kops_per_s,
            distinct.kops_per_s,
            hot.coalesced,
            distinct.avg_delta_b,
            distinct.avg_full_b
        );
    }

    // The acceptance bar. In quick mode (CI smoke, ≤ 4 threads) assert
    // only that batching materializes at all; the full run holds the
    // ISSUE's numbers at 8 writers.
    if let Some((syncs_per_op, largest)) = eight_threads {
        assert!(
            syncs_per_op < 1.0 / 8.0,
            "8+ writers must share commits: syncs/op = {syncs_per_op}"
        );
        assert!(largest >= 8, "a batch of ≥ 8 ops must materialize: largest = {largest}");
        println!(
            "\nacceptance: syncs/op {syncs_per_op:.4} < 1/8 at 8 writer threads, \
             largest batch {largest} >= 8"
        );
    } else {
        // The quick sweep already measured the 4-thread point; assert
        // on it instead of paying a third fsync-bound run.
        let (syncs_per_op, largest) = four_threads.expect("the sweep includes 4 threads");
        assert!(syncs_per_op < 1.0, "group commits must batch: syncs/op = {syncs_per_op}");
        assert!(largest >= 2, "batches must form: largest = {largest}");
        println!(
            "\nsmoke: syncs/op {syncs_per_op:.4} < 1 at 4 writer threads, largest batch {largest}"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"exp_service\",\n  \"command\": \"cargo run -p dxh-bench --release \
         --bin exp_service -- --seed {seed}\",\n  \
         \"note\": \"Real-directory deployment: every sync is a real fsync; wall-clock is \
         container-local (trajectory, not absolutes; each point is its best of {TRIALS} \
         interleaved passes). syncs_per_op = sync rounds / acknowledged writes — a round \
         commits every shard's batches with one fsync of the service-wide commit log; \
         shard_syncs counts per-shard manifest hardens, paid only by checkpoint rounds.\",\n  \
         \"params\": {{\"ops_per_thread\": {ops_per_thread}, \"chunk\": {CHUNK}, \"trials\": \
         {TRIALS}, \"seed\": {seed}}},\n  \"coalescing\": {{\n    \"note\": \"Sweep 3 at \
         {fixed_threads} writers x 8 shards, checkpoint rotations every \
         {COALESCE_CKPT_LOG_BYTES} log bytes: Zipf({ZIPF_THETA}) hot-key writes over \
         {ZIPF_UNIVERSE} keys/thread vs the all-distinct uncoalesced twin. Gates: zipf-hot \
         kops/s >= distinct, and avg delta-harden bytes <= 1/8 of a final full manifest \
         rewrite.\",\n    \"points\": [\n{}\n    ]\n  }},\n  \"points\": [\n{}\n  ]\n}}\n",
        co_json.join(",\n"),
        json_rows.join(",\n")
    );
    let path = args.out_dir.join("exp_service.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, &json))
    {
        eprintln!("[json] failed to write {}: {e}", path.display());
    } else {
        println!("[json] {}", path.display());
    }
}
