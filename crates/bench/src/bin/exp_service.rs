//! **Group-commit service** — throughput and syncs-per-op of the
//! concurrent sharded [`ShardedKvStore`] versus writer-thread count.
//!
//! The paper buys `tu < 1` by buffering updates; this experiment
//! measures the durability-layer analogue: with one writer every
//! acknowledged write pays a full manifest fsync, and with `K` writers
//! group commits amortize that fsync across whole batches. Two sweeps:
//!
//! * **threads** (single shard): writer count vs wall-clock throughput,
//!   syncs per acknowledged op, and the largest batch one fsync carried
//!   — the pure group-commit effect, no routing dilution;
//! * **shards** (fixed writer count): how partitioning trades per-shard
//!   batch size against parallel commit lanes.
//!
//! Writers replay disjoint-namespace [`ConcurrentChurn`] traces through
//! pipelined `submit` chunks — the shape a real ingest pipeline has —
//! against a real-directory deployment (every sync is a real fsync).
//!
//! At ≥ 8 threads the run **asserts** the acceptance bar: syncs-per-op
//! < 1/8 with a largest batch ≥ 8 (the full run; `--quick` stops at 4
//! threads and asserts batching merely happens). Output: aligned
//! tables, `results/exp_service.csv`, and `results/exp_service.json`
//! (tracked by `BENCH_SERVICE.json` at the repo root).
//!
//! Run: `cargo run -p dxh-bench --release --bin exp_service [--quick]
//! [--seed N]`

use std::time::Instant;

use dxh_analysis::{table::fmt_f, TextTable};
use dxh_bench::{emit, ExpArgs};
use dxh_core::{CoreConfig, ShardedKvStore, WriteOp};
use dxh_workloads::{ConcurrentChurn, Op};

/// Ops each writer pipelines per `submit` call (a small ingest buffer).
const CHUNK: usize = 4;

struct Point {
    threads: usize,
    shards: usize,
    ops: u64,
    wall_ms: f64,
    kops_per_s: f64,
    syncs_per_op: f64,
    avg_batch: f64,
    largest_batch: u64,
}

/// Drives `threads` writers over a fresh service and measures one point.
fn run_point(threads: usize, shards: usize, ops_per_thread: usize, seed: u64) -> Point {
    let dir = std::env::temp_dir()
        .join(format!("dxh-exp-service-{}-{threads}x{shards}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = CoreConfig::lemma5(32, 1024, 2).expect("config");
    let svc = ShardedKvStore::open(&dir, shards, cfg, seed).expect("create service");
    let workload = ConcurrentChurn::new(threads, ops_per_thread, 0.7, 0.15).expect("churn shape");
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let svc = &svc;
            let trace = workload.thread_trace(t, seed);
            scope.spawn(move || {
                let mut chunk: Vec<WriteOp> = Vec::with_capacity(CHUNK);
                for op in &trace.ops {
                    match *op {
                        Op::Insert(k, v) => chunk.push(WriteOp::Put(k, v)),
                        Op::Delete(k) => chunk.push(WriteOp::Delete(k)),
                        Op::Lookup(k) => {
                            let _ = svc.get(k).expect("lookup");
                            continue;
                        }
                    }
                    if chunk.len() >= CHUNK {
                        svc.submit(&chunk).expect("submit");
                        chunk.clear();
                    }
                }
                if !chunk.is_empty() {
                    svc.submit(&chunk).expect("submit tail");
                }
            });
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = svc.stats();
    svc.sync_all().expect("sync_all");
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    Point {
        threads,
        shards,
        ops: stats.committed_ops,
        wall_ms,
        kops_per_s: stats.committed_ops as f64 / wall_ms,
        syncs_per_op: stats.syncs_per_op(),
        avg_batch: if stats.committed_batches == 0 {
            0.0
        } else {
            stats.committed_ops as f64 / stats.committed_batches as f64
        },
        largest_batch: stats.largest_batch,
    }
}

fn push_row(table: &mut TextTable, json: &mut Vec<String>, p: &Point) {
    table.row([
        p.threads.to_string(),
        p.shards.to_string(),
        p.ops.to_string(),
        fmt_f(p.wall_ms, 1),
        fmt_f(p.kops_per_s, 1),
        fmt_f(p.syncs_per_op, 4),
        fmt_f(p.avg_batch, 2),
        p.largest_batch.to_string(),
    ]);
    json.push(format!(
        "    {{\"threads\": {}, \"shards\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \
         \"kops_per_s\": {:.2}, \"syncs_per_op\": {:.5}, \"avg_batch\": {:.2}, \
         \"largest_batch\": {}}}",
        p.threads,
        p.shards,
        p.ops,
        p.wall_ms,
        p.kops_per_s,
        p.syncs_per_op,
        p.avg_batch,
        p.largest_batch
    ));
}

fn main() {
    let args = ExpArgs::parse();
    let seed: u64 =
        args.get("seed").map(|v| v.parse().expect("--seed takes a number")).unwrap_or(0x5E41_11CE);
    let ops_per_thread = args.scale(4000, 600);
    let thread_sweep: &[usize] = if args.quick { &[1, 2, 4] } else { &[1, 2, 4, 8, 16] };
    let shard_sweep: &[usize] = if args.quick { &[1, 2] } else { &[1, 2, 4, 8] };

    let header = ["threads", "shards", "ops", "wall ms", "kops/s", "syncs/op", "avg batch", "max"];
    let mut json_rows = Vec::new();

    // Sweep 1: writers vs one shard — the pure group-commit effect.
    let mut threads_table = TextTable::new(header);
    let mut eight_threads: Option<(f64, u64)> = None;
    let mut four_threads: Option<(f64, u64)> = None;
    for &threads in thread_sweep {
        let p = run_point(threads, 1, ops_per_thread, seed);
        if p.threads >= 8 && eight_threads.is_none() {
            eight_threads = Some((p.syncs_per_op, p.largest_batch));
        }
        if p.threads == 4 {
            four_threads = Some((p.syncs_per_op, p.largest_batch));
        }
        push_row(&mut threads_table, &mut json_rows, &p);
    }
    emit("Group commit: writer threads vs one shard", &threads_table, &args, "exp_service.csv");

    // Sweep 2: shards vs a fixed writer count.
    let fixed_threads = if args.quick { 4 } else { 8 };
    let mut shards_table = TextTable::new(header);
    for &shards in shard_sweep {
        let p = run_point(fixed_threads, shards, ops_per_thread, seed);
        push_row(&mut shards_table, &mut json_rows, &p);
    }
    emit(
        "Group commit: shards vs a fixed writer count",
        &shards_table,
        &args,
        "exp_service_shards.csv",
    );

    // The acceptance bar. In quick mode (CI smoke, ≤ 4 threads) assert
    // only that batching materializes at all; the full run holds the
    // ISSUE's numbers at 8 writers.
    if let Some((syncs_per_op, largest)) = eight_threads {
        assert!(
            syncs_per_op < 1.0 / 8.0,
            "8+ writers must share commits: syncs/op = {syncs_per_op}"
        );
        assert!(largest >= 8, "a batch of ≥ 8 ops must materialize: largest = {largest}");
        println!(
            "\nacceptance: syncs/op {syncs_per_op:.4} < 1/8 at 8 writer threads, \
             largest batch {largest} >= 8"
        );
    } else {
        // The quick sweep already measured the 4-thread point; assert
        // on it instead of paying a third fsync-bound run.
        let (syncs_per_op, largest) = four_threads.expect("the sweep includes 4 threads");
        assert!(syncs_per_op < 1.0, "group commits must batch: syncs/op = {syncs_per_op}");
        assert!(largest >= 2, "batches must form: largest = {largest}");
        println!(
            "\nsmoke: syncs/op {syncs_per_op:.4} < 1 at 4 writer threads, largest batch {largest}"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"exp_service\",\n  \"command\": \"cargo run -p dxh-bench --release \
         --bin exp_service -- --seed {seed}\",\n  \
         \"note\": \"Real-directory deployment: every sync is a real fsync; wall-clock is \
         container-local (trajectory, not absolutes). syncs_per_op = group commits / \
         acknowledged writes.\",\n  \
         \"params\": {{\"ops_per_thread\": {ops_per_thread}, \"chunk\": {CHUNK}, \"seed\": \
         {seed}}},\n  \"points\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = args.out_dir.join("exp_service.json");
    if let Err(e) =
        std::fs::create_dir_all(&args.out_dir).and_then(|()| std::fs::write(&path, &json))
    {
        eprintln!("[json] failed to write {}: {e}", path.display());
    } else {
        println!("[json] {}", path.display());
    }
}
