//! # dxh-bench — experiment scaffolding
//!
//! Shared plumbing for the experiment binaries (one binary per paper
//! table/figure; see `DESIGN.md` §4 for the index):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1_tradeoff` | Figure 1, the query–insertion tradeoff |
//! | `exp_knuth` | Knuth §6.4 baseline (`tq = 1 + 1/2^Ω(b)`) |
//! | `exp_logmethod` | Lemma 5 (logarithmic method) |
//! | `exp_bootstrap` | Theorem 2 (bootstrapped table) |
//! | `exp_lowerbound` | Theorem 1, tradeoffs 1–3 (adversary harness) |
//! | `exp_binball` | Lemmas 3 and 4 (bin-ball games) |
//! | `exp_ablation` | A1 cache / A2 hash-family / A3 cost-model ablations |
//! | `exp_backend` | MemDisk vs FileDisk twins (accounting is backend-independent) |
//! | `exp_compaction` | KvStore space reclamation: delete churn, crash GC, compact |
//! | `exp_service` | ShardedKvStore group commit: throughput + syncs-per-op vs writers |
//! | `torture` | crash-recovery torture: exhaustive sync/compact crash-index sweeps |
//!
//! Every binary accepts `--quick` (smaller n, for smoke runs), prints an
//! aligned table to stdout, and writes CSV into `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::path::PathBuf;

use dxh_core::{DynamicHashTable, ExternalDictionary, TradeoffTarget};
use dxh_extmem::{Key, Result};
use dxh_hashfn::SplitMix64;
use dxh_workloads::measure_tq;

/// Common command-line arguments for experiment binaries.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Reduce problem sizes for a fast smoke run.
    pub quick: bool,
    /// Independent trials to average over.
    pub trials: u64,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Remaining free-form `--key value` pairs.
    pub extra: Vec<(String, String)>,
}

impl ExpArgs {
    /// Parses `std::env::args()`: `--quick`, `--trials N`, `--out DIR`,
    /// plus arbitrary `--key value` pairs exposed via [`ExpArgs::get`].
    pub fn parse() -> Self {
        let mut args = std::env::args().skip(1);
        let mut out = ExpArgs {
            quick: false,
            trials: 3,
            out_dir: PathBuf::from("results"),
            extra: Vec::new(),
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--trials" => {
                    out.trials =
                        args.next().and_then(|v| v.parse().ok()).expect("--trials needs a number");
                }
                "--out" => {
                    out.out_dir = PathBuf::from(args.next().expect("--out needs a path"));
                }
                other => {
                    if let Some(key) = other.strip_prefix("--") {
                        let value = args.next().unwrap_or_default();
                        out.extra.push((key.to_string(), value));
                    } else {
                        eprintln!("ignoring unrecognized argument {other:?}");
                    }
                }
            }
        }
        out
    }

    /// Looks up a free-form `--key value` argument.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.extra.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Picks `full` or `quick` depending on `--quick`.
    pub fn scale(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Inserts `n` distinct uniform random keys (the paper's input model)
/// and returns them for later query sampling.
pub fn insert_uniform<T: ExternalDictionary + ?Sized>(
    table: &mut T,
    n: usize,
    seed: u64,
) -> Result<Vec<Key>> {
    let mut rng = SplitMix64::new(seed);
    let mut used: HashSet<Key> = HashSet::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let k = rng.next_u64() >> 1;
        if used.insert(k) {
            table.insert(k, k)?;
            keys.push(k);
        }
    }
    Ok(keys)
}

/// One measured point on the tradeoff plane.
#[derive(Clone, Copy, Debug)]
pub struct TradeoffPoint {
    /// Amortized insertion cost (I/Os per insert over the whole run).
    pub tu: f64,
    /// Expected average successful lookup cost (sampled).
    pub tq: f64,
    /// Internal memory used (items).
    pub memory: usize,
}

/// Builds the table for `target`, inserts `n` uniform keys, and measures
/// `(tu, tq)` with `samples` query samples.
pub fn measure_target(
    target: TradeoffTarget,
    b: usize,
    m: usize,
    n: usize,
    samples: usize,
    seed: u64,
) -> Result<TradeoffPoint> {
    let mut table = DynamicHashTable::for_target(target, b, m, seed)?;
    let keys = insert_uniform(&mut table, n, seed ^ 0x5EED)?;
    let tu = table.total_ios() as f64 / n as f64;
    let tq = measure_tq(&mut table, &keys, samples, seed ^ 0x9A11)?;
    Ok(TradeoffPoint { tu, tq, memory: table.memory_used() })
}

/// Prints a rendered table under a section heading and writes its CSV.
pub fn emit(title: &str, table: &dxh_analysis::TextTable, args: &ExpArgs, csv_name: &str) {
    println!("\n== {title} ==\n");
    print!("{}", table.render());
    let path = args.out_dir.join(csv_name);
    match table.write_csv(&path) {
        Ok(()) => println!("\n[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_uniform_returns_distinct_keys() {
        let mut t =
            DynamicHashTable::for_target(TradeoffTarget::QueryOptimal, 16, 4096, 1).unwrap();
        let keys = insert_uniform(&mut t, 500, 2).unwrap();
        let set: HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), 500);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn measure_target_produces_sane_point() {
        let p = measure_target(TradeoffTarget::QueryOptimal, 32, 4096, 2000, 300, 3).unwrap();
        assert!(p.tu >= 1.0 && p.tu < 1.6, "chaining tu {}", p.tu);
        assert!(p.tq >= 1.0 && p.tq < 1.3, "chaining tq {}", p.tq);
        assert!(p.memory <= 4096);
    }

    #[test]
    fn scale_picks_by_quick() {
        let mut a = ExpArgs {
            quick: false,
            trials: 1,
            out_dir: PathBuf::new(),
            extra: vec![("regime".into(), "3".into())],
        };
        assert_eq!(a.scale(100, 10), 100);
        a.quick = true;
        assert_eq!(a.scale(100, 10), 10);
        assert_eq!(a.get("regime"), Some("3"));
        assert_eq!(a.get("missing"), None);
    }
}
