//! Criterion micro-benchmarks: wall-clock insert/lookup throughput of
//! every structure at a fixed size (the I/O *counts* are covered by the
//! experiment binaries; these watch the simulator's CPU cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dxh_core::{
    BootstrappedTable, CoreConfig, DynamicHashTable, ExternalDictionary, TradeoffTarget,
};
use dxh_hashfn::SplitMix64;
use std::hint::black_box;

const N: usize = 20_000;
const B: usize = 64;
const M: usize = 1024;

fn build(target: TradeoffTarget, seed: u64) -> DynamicHashTable {
    let mut t = DynamicHashTable::for_target(target, B, M, seed).unwrap();
    let mut rng = SplitMix64::new(seed);
    for _ in 0..N {
        let k = rng.next_u64() >> 1;
        t.insert(k, k).unwrap();
    }
    t
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_20k");
    group.sample_size(10);
    for (name, target) in [
        ("chaining", TradeoffTarget::QueryOptimal),
        ("log-method", TradeoffTarget::LogMethod { gamma: 2 }),
        ("bootstrapped", TradeoffTarget::InsertOptimal { c: 0.5 }),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |bencher| {
            bencher.iter(|| black_box(build(target, 7)));
        });
    }
    group.finish();
}

fn bench_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_hit");
    for (name, target) in [
        ("chaining", TradeoffTarget::QueryOptimal),
        ("log-method", TradeoffTarget::LogMethod { gamma: 2 }),
        ("bootstrapped", TradeoffTarget::InsertOptimal { c: 0.5 }),
    ] {
        let mut table = build(target, 9);
        let mut rng = SplitMix64::new(9);
        let keys: Vec<u64> = (0..N).map(|_| rng.next_u64() >> 1).collect();
        let mut i = 0;
        group.bench_function(BenchmarkId::from_parameter(name), |bencher| {
            bencher.iter(|| {
                i = (i + 1) % keys.len();
                black_box(table.lookup(keys[i]).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_merge_heavy(c: &mut Criterion) {
    // Small β forces frequent Ĥ merges: stresses the stream machinery.
    c.bench_function("bootstrapped_merge_heavy_5k", |bencher| {
        bencher.iter(|| {
            let cfg = CoreConfig::custom(B, M, 2, 2.0).unwrap();
            let mut t = BootstrappedTable::new(cfg, 3).unwrap();
            let mut rng = SplitMix64::new(4);
            for _ in 0..5000 {
                let k = rng.next_u64() >> 1;
                t.insert(k, k).unwrap();
            }
            black_box(t.merge_count())
        });
    });
}

criterion_group!(benches, bench_inserts, bench_lookups, bench_merge_heavy);
criterion_main!(benches);
