//! Criterion micro-benchmarks: bin-ball game simulation throughput
//! (the lower-bound experiments play millions of games).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dxh_lowerbound::BinBallGame;
use std::hint::black_box;

fn bench_games(c: &mut Criterion) {
    let mut group = c.benchmark_group("binball_play");
    for (s, r, t) in [(100u64, 1000u64, 10u64), (1000, 10_000, 100), (5000, 500, 2500)] {
        let g = BinBallGame { s, r, t };
        let mut seed = 0u64;
        group.bench_function(BenchmarkId::from_parameter(format!("s{s}_r{r}_t{t}")), |b| {
            b.iter(|| {
                seed += 1;
                black_box(g.play(seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_games);
criterion_main!(benches);
