//! Criterion micro-benchmarks: hash evaluation throughput per family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dxh_hashfn::{
    HashFamily, HashFn, IdealFamily, MultiplyShiftFamily, PolynomialFamily, TabulationFamily,
    UniversalFamily,
};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_families(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("hash64");

    macro_rules! bench {
        ($name:expr, $family:expr) => {
            let f = $family.sample(&mut rng);
            let mut x = 0u64;
            group.bench_function(BenchmarkId::from_parameter($name), |bencher| {
                bencher.iter(|| {
                    x = x.wrapping_add(0x9E37_79B9);
                    black_box(f.hash64(x))
                });
            });
        };
    }
    bench!("ideal", IdealFamily);
    bench!("universal", UniversalFamily);
    bench!("multiply-shift", MultiplyShiftFamily);
    bench!("tabulation", TabulationFamily);
    bench!("poly-k4", PolynomialFamily::new(4));
    group.finish();
}

criterion_group!(benches, bench_families);
criterion_main!(benches);
