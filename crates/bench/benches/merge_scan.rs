//! Criterion micro-benchmarks: the sequential merge machinery —
//! chaining-table hierarchical resize and log-method level migrations,
//! the operations whose `O(n/b)` behavior every amortized bound rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dxh_core::{CoreConfig, ExternalDictionary, LogMethodTable};
use dxh_hashfn::{IdealFn, SplitMix64};
use dxh_tables::{ChainingConfig, ChainingTable};
use std::hint::black_box;

fn bench_chaining_growth(c: &mut Criterion) {
    // Inserting 20k items into a table starting at 4 buckets exercises
    // ~12 hierarchical doublings.
    c.bench_function("chaining_growth_20k", |bencher| {
        bencher.iter(|| {
            let cfg = ChainingConfig::new(64, 4096).initial_buckets(4);
            let mut t = ChainingTable::new(cfg, IdealFn::from_seed(1)).unwrap();
            let mut rng = SplitMix64::new(2);
            for _ in 0..20_000 {
                let k = rng.next_u64() >> 1;
                t.insert(k, k).unwrap();
            }
            black_box(t.buckets())
        });
    });
}

fn bench_log_method_migrations(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_method_20k");
    group.sample_size(10);
    for gamma in [2u64, 8] {
        group.bench_function(BenchmarkId::from_parameter(gamma), |bencher| {
            bencher.iter(|| {
                let cfg = CoreConfig::lemma5(64, 1024, gamma).unwrap();
                let mut t = LogMethodTable::new(cfg, 3).unwrap();
                let mut rng = SplitMix64::new(4);
                for _ in 0..20_000 {
                    let k = rng.next_u64() >> 1;
                    t.insert(k, k).unwrap();
                }
                black_box(t.active_levels())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chaining_growth, bench_log_method_migrations);
criterion_main!(benches);
