//! # dyn-ext-hash
//!
//! A Rust reproduction of **"Dynamic External Hashing: The Limit of
//! Buffering"** (Zhewei Wei, Ke Yi, Qin Zhang — SPAA 2009,
//! arXiv:0811.3062): dynamic hash tables in the external memory model,
//! the logarithmic-method and bootstrapped constructions that trade query
//! cost for insertion cost, and the zones/bin-ball machinery behind the
//! matching lower bounds.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`extmem`] — the external memory model: blocks, disks, I/O
//!   accounting, memory budgets, buffer pools.
//! * [`hashfn`] — hash function families (ideal PRF, universal,
//!   multiply-shift, tabulation, k-independent polynomials).
//! * [`tables`] — classic external hash tables: chaining, blocked linear
//!   probing, extendible hashing, linear hashing.
//! * [`core`] — the paper's constructions: [`core::LogMethodTable`]
//!   (Lemma 5) and [`core::BootstrappedTable`] (Theorem 2).
//! * [`lowerbound`] — Theorem 1 machinery: zones, bin-ball games, the
//!   adversary harness.
//! * [`analysis`] — closed-form bounds, Knuth-style formulas, tail
//!   bounds, statistics.
//! * [`workloads`] — generators, traces, sequential and parallel
//!   runners, and the crash-recovery torture harness.
//! * [`sync`] — the concurrency seam under the sharded service: std
//!   primitives in release builds, a loom-style cooperative model
//!   checker under `--features model` (see `docs/CONCURRENCY.md`).
//!
//! ## Quickstart
//!
//! ```
//! use dyn_ext_hash::core::{BootstrappedTable, CoreConfig};
//! use dyn_ext_hash::tables::ExternalDictionary;
//!
//! // b = 64-item blocks, m = 4096 items of internal memory, β = b^(1/2):
//! // Theorem 2 promises amortized O(b^(-1/2)) I/Os per insertion with
//! // queries at 1 + O(1/b^(1/2)) I/Os.
//! let cfg = CoreConfig::theorem2(64, 4096, 0.5).unwrap();
//! let mut table = BootstrappedTable::new(cfg, 0xC0FFEE).unwrap();
//! for key in 0..50_000u64 {
//!     table.insert(key, key * 2).unwrap();
//! }
//! assert_eq!(table.lookup(12_345).unwrap(), Some(24_690));
//! let tu = table.disk_stats().total(table.cost_model()) as f64 / 50_000.0;
//! assert!(tu < 1.0, "buffering beats one I/O per insert: {tu}");
//! ```

pub use dxh_analysis as analysis;
pub use dxh_btree as btree;
pub use dxh_core as core;
pub use dxh_extmem as extmem;
pub use dxh_hashfn as hashfn;
pub use dxh_lowerbound as lowerbound;
pub use dxh_sync as sync;
pub use dxh_tables as tables;
pub use dxh_workloads as workloads;
