//! `lint-durability` — the static half of the durability-protocol
//! checker (the runtime half is `dxh_dura::check_trace`; the shared
//! rule table is `dxh_dura::RULES`).
//!
//! A line scanner over cleaned source, not a compiler (the scanner core
//! is shared with `lint-locks`, see `scan.rs`). Per function it:
//!
//! 1. classifies every I/O-effectful call site into a
//!    [`dxh_dura::EffectClass`] using the table's source tokens
//!    ([`dxh_dura::SINKS`], [`dxh_dura::ACK_FILL`],
//!    [`dxh_dura::META_UNLINK_MARKERS`], [`dxh_dura::DIR_FSYNC_FNS`]),
//! 2. records calls to other scanned functions and inlines their effect
//!    summaries to a fixpoint (cycle-safe, sim/real name collisions
//!    resolved toward the real-media impls), and
//! 3. checks each function's resolved effect sequence against every
//!    lint-enabled rule, reporting `file:line` at the anchor site.
//!
//! Check semantics per rule (deliberately conservative, pinned by the
//! seeded-mutant tests below):
//!
//! * `rename-after-data-fsync` / `delta-append-after-data-fsync` — the
//!   **nearest** write-class effect before each rename (or manifest-delta
//!   append, the incremental commit point with the rename's semantics)
//!   must be a data fsync; an anchor with no prior write-class effect is
//!   vacuously ordered (nothing volatile can be swapped past it —
//!   `CommitLog::seal`'s shape, whose bytes were all fsynced by the
//!   commits that wrote them).
//! * `ack-after-fsync` — **existence**: some data fsync must appear
//!   before the ack in the path (not "nearest", because failure-path
//!   rollbacks like `DirCommitLog::commit`'s `set_len` legitimately sit
//!   between the round's fsync and the acks).
//! * `rename-then-dir-fsync` / `clean-unlink-then-dir-fsync` — a
//!   directory fsync must follow the anchor before its function's
//!   sequence ends.
//! * `no-discarded-sync-result` — no `let _ =` / `.ok();` on a line
//!   calling a sync-class API; the single sanctioned sink is
//!   `media::best_effort(..)` (each site documents why).

use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::process::ExitCode;

use dxh_dura::{
    Check, EffectClass, ACK_FILL, DIR_FSYNC_FNS, META_UNLINK_MARKERS, RULES, SINKS,
    SYNC_RESULT_TOKENS,
};

use crate::scan::{clean_source, split_functions};

/// The persistence-path sources under the durability discipline,
/// relative to the repo root.
const TARGETS: &[&str] = &[
    "crates/core/src/store.rs",
    "crates/core/src/media.rs",
    "crates/core/src/service.rs",
    "crates/core/src/facade.rs",
    "crates/extmem/src/blob.rs",
    "crates/extmem/src/file_disk.rs",
    "crates/extmem/src/sim_disk.rs",
];

/// When a called name is defined by several scanned functions (a real
/// impl and its sim twin, usually), inlining binds the one whose `impl`
/// target appears earliest here. The sim twins' metadata ops are
/// atomic-durable and carry no source-visible protocol, so the real
/// impl is always the stricter (and intended) summary.
const CANONICAL_IMPLS: &[&str] =
    &["DirMedia", "DirCommitLog", "DirServiceMedia", "FileDisk", "KvStore", "DirLock"];

/// Call names never inlined: they collide with std idioms (`drop(g)`
/// releases a guard, `.open(`/`.write(`/`.read(` are ubiquitous std
/// I/O methods), so binding them to a scanned function of the same
/// name would inject phantom effects into unrelated sequences — and a
/// phantom fsync could *mask* a real violation.
const UNBOUND_CALLS: &[&str] = &["drop", "open", "new", "write", "read"];

/// The one sanctioned discard sink for sync-class `Result`s.
const DISCARD_EXEMPT: &str = "best_effort(";

/// One durability-order violation, anchored at a source line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Violation {
    /// Index into the scanned source list (the `TARGETS` order in
    /// `run`).
    pub file: usize,
    /// 1-based anchor line.
    pub line: usize,
    /// The violated rule's id in `dxh_dura::RULES`.
    pub rule: &'static str,
    /// Human-readable description.
    pub what: String,
}

/// Anchor/effect counts across the scanned corpus — `run` enforces
/// floors on these so a scanner regression (sinks renamed, token
/// drift) cannot silently turn the lint vacuous.
#[derive(Debug, Default)]
pub(crate) struct ScanStats {
    pub fns: usize,
    pub renames: usize,
    pub acks: usize,
    pub meta_unlinks: usize,
    pub data_fsyncs: usize,
    pub dir_fsyncs: usize,
    pub delta_appends: usize,
}

/// A classified site: where it is, in which scanned file.
#[derive(Debug, Clone, Copy)]
struct Site {
    file: usize,
    line: usize,
}

/// One entry of a function's raw (pre-inline) effect sequence.
#[derive(Debug, Clone)]
enum Item {
    Eff(EffectClass, Site),
    /// A call to another scanned function, by index.
    Call(usize),
}

/// One scanned function: identity plus cleaned body lines.
struct FnInfo {
    name: String,
    imp: Option<String>,
    file: usize,
    body: Vec<(usize, String)>,
}

/// Every `needle` occurrence in `hay`, by byte offset.
fn occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut at = 0;
    while let Some(i) = hay[at..].find(needle) {
        out.push(at + i);
        at += i + needle.len().max(1);
    }
    out
}

/// Whether a call-name match at `col..col+len` is a standalone
/// identifier followed directly by `(`.
fn call_boundary_ok(text: &str, col: usize, len: usize) -> bool {
    let prev_ok = col == 0
        || text[..col].chars().next_back().is_some_and(|c| !(c.is_alphanumeric() || c == '_'));
    prev_ok && text[col + len..].starts_with('(')
}

/// Scans one cleaned body line into classified items (sinks, ack
/// fills, recovery-visible unlinks, calls into the corpus), ordered by
/// column. Call matches never overlap a sink match — `fs::write(`
/// classifies as the sink, not as a call to a scanned `write`.
fn line_items(
    text: &str,
    site: Site,
    in_dir_fsync_fn: bool,
    call_of: &HashMap<&str, usize>,
    out: &mut Vec<Item>,
) {
    let mut found: Vec<(usize, usize, Item)> = Vec::new();
    for &(tok, class) in SINKS {
        for col in occurrences(text, tok) {
            let class =
                if tok == ".sync_all(" && in_dir_fsync_fn { EffectClass::DirFsync } else { class };
            found.push((col, col + tok.len(), Item::Eff(class, site)));
        }
    }
    for col in occurrences(text, ACK_FILL) {
        found.push((col, col + ACK_FILL.len(), Item::Eff(EffectClass::AckRelease, site)));
    }
    if META_UNLINK_MARKERS.iter().any(|m| text.contains(m)) {
        for col in occurrences(text, "remove_file(") {
            found.push((col, col + "remove_file(".len(), Item::Eff(EffectClass::MetaUnlink, site)));
        }
    }
    for (&name, &idx) in call_of {
        for col in occurrences(text, name) {
            if !call_boundary_ok(text, col, name.len()) {
                continue;
            }
            let span = (col, col + name.len() + 1);
            if found.iter().any(|&(s, e, _)| span.0 < e && s < span.1) {
                continue;
            }
            found.push((span.0, span.1, Item::Call(idx)));
        }
    }
    found.sort_by_key(|&(col, _, _)| col);
    out.extend(found.into_iter().map(|(_, _, it)| it));
}

/// Resolves function `i`'s effect sequence: its own effects with every
/// call inlined to a fixpoint. Cycles resolve to the empty sequence at
/// the back edge (recursion adds no *new* ordering evidence).
fn resolve(
    i: usize,
    items: &[Vec<Item>],
    memo: &mut Vec<Option<Vec<(EffectClass, Site)>>>,
    on_stack: &mut Vec<bool>,
) -> Vec<(EffectClass, Site)> {
    if let Some(seq) = &memo[i] {
        return seq.clone();
    }
    if on_stack[i] {
        return Vec::new();
    }
    on_stack[i] = true;
    let mut seq = Vec::new();
    for it in &items[i] {
        match it {
            Item::Eff(class, site) => seq.push((*class, *site)),
            Item::Call(j) => seq.extend(resolve(*j, items, memo, on_stack)),
        }
    }
    on_stack[i] = false;
    memo[i] = Some(seq.clone());
    seq
}

/// Checks one function's resolved sequence against every lint-enabled
/// ordering rule of the table. Rules anchor only on the function's
/// **own** effect sites (`own == true`); inlined callees' effects are
/// context — they satisfy preceded/followed obligations but are not
/// re-anchored here (each callee anchors its own sites in its own
/// evaluation, where its local ordering holds; re-anchoring them in
/// every caller would indict e.g. `seal`'s write-free rename with a
/// caller's unrelated earlier buffered write).
fn eval_sequence(seq: &[(EffectClass, Site, bool)], out: &mut BTreeSet<Violation>) {
    for rule in RULES.iter().filter(|r| r.lint) {
        match rule.check {
            Check::Preceded(want) => {
                for (i, &(class, site, own)) in seq.iter().enumerate() {
                    if !own || class != rule.anchor {
                        continue;
                    }
                    let bad =
                        if matches!(rule.anchor, EffectClass::Rename | EffectClass::DeltaAppend) {
                            // Nearest write-class predecessor must be the
                            // fsync; no predecessor is vacuously ordered.
                            // (A manifest-delta append is an index commit
                            // point exactly like the rename.)
                            matches!(
                                seq[..i].iter().rev().find(|(c, _, _)| {
                                    matches!(c, EffectClass::VolatileWrite | EffectClass::DataFsync)
                                }),
                                Some((EffectClass::VolatileWrite, _, _))
                            )
                        } else {
                            // Ack: some fsync must exist earlier in the path.
                            !seq[..i].iter().any(|(c, _, _)| *c == want)
                        };
                    if bad {
                        out.insert(Violation {
                            file: site.file,
                            line: site.line,
                            rule: rule.name,
                            what: format!(
                                "{} not preceded by {} — {}",
                                rule.anchor.name(),
                                want.name(),
                                rule.why
                            ),
                        });
                    }
                }
            }
            Check::Followed(want) => {
                for (i, &(class, site, own)) in seq.iter().enumerate() {
                    if !own || class != rule.anchor {
                        continue;
                    }
                    if !seq[i + 1..].iter().any(|(c, _, _)| *c == want) {
                        out.insert(Violation {
                            file: site.file,
                            line: site.line,
                            rule: rule.name,
                            what: format!(
                                "{} not followed by {} — {}",
                                rule.anchor.name(),
                                want.name(),
                                rule.why
                            ),
                        });
                    }
                }
            }
            // Trace-only / handled by the per-line discard check.
            Check::NoWriteUnderCleanMarker
            | Check::NoDiscardedSyncResult
            | Check::BlobSyncedAtCommit => {}
        }
    }
}

/// The per-line discard check (`no-discarded-sync-result`): a sync-class
/// call's `Result` dropped with `let _ =` or `.ok();`, outside the
/// sanctioned `best_effort(..)` sink.
fn eval_discards(f: &FnInfo, out: &mut BTreeSet<Violation>) {
    for (line, text) in &f.body {
        if text.contains(DISCARD_EXEMPT) {
            continue;
        }
        if !(text.contains("let _ =") || text.contains(".ok();")) {
            continue;
        }
        if let Some(tok) = SYNC_RESULT_TOKENS.iter().find(|t| text.contains(**t)) {
            out.insert(Violation {
                file: f.file,
                line: *line,
                rule: "no-discarded-sync-result",
                what: format!(
                    "`{tok}` result discarded — {} (route a deliberate best-effort \
                     sync through media::best_effort and document why)",
                    dxh_dura::rule("no-discarded-sync-result").why
                ),
            });
        }
    }
}

/// Scans a corpus of cleaned-to-be sources (indexed as `TARGETS` in
/// `run`, arbitrarily in tests) and returns the deduped violations plus
/// the anchor census.
pub(crate) fn scan_sources(srcs: &[&str]) -> (Vec<Violation>, ScanStats) {
    // Pass 1: recover every production function in the corpus.
    let mut fns: Vec<FnInfo> = Vec::new();
    for (file, src) in srcs.iter().enumerate() {
        let cleaned = clean_source(src);
        for f in split_functions(&cleaned) {
            fns.push(FnInfo { name: f.name, imp: f.imp, file, body: f.body });
        }
    }
    // Bind each callable name to one function: the canonical impl on a
    // collision, the sole definition otherwise, nothing if ambiguous.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let mut call_of: HashMap<&str, usize> = HashMap::new();
    for (name, cands) in &by_name {
        if UNBOUND_CALLS.contains(name) {
            continue;
        }
        let pick = if cands.len() == 1 {
            Some(cands[0])
        } else {
            CANONICAL_IMPLS
                .iter()
                .find_map(|ci| cands.iter().find(|&&i| fns[i].imp.as_deref() == Some(ci)))
                .copied()
        };
        if let Some(i) = pick {
            call_of.insert(name, i);
        }
    }
    // Pass 2: per-function raw effect sequences.
    let mut items: Vec<Vec<Item>> = Vec::with_capacity(fns.len());
    let mut stats = ScanStats { fns: fns.len(), ..ScanStats::default() };
    for f in &fns {
        let in_dir_fsync_fn = DIR_FSYNC_FNS.contains(&f.name.as_str());
        let mut seq = Vec::new();
        for (line, text) in &f.body {
            line_items(
                text,
                Site { file: f.file, line: *line },
                in_dir_fsync_fn,
                &call_of,
                &mut seq,
            );
        }
        for it in &seq {
            if let Item::Eff(class, _) = it {
                match class {
                    EffectClass::Rename => stats.renames += 1,
                    EffectClass::AckRelease => stats.acks += 1,
                    EffectClass::MetaUnlink => stats.meta_unlinks += 1,
                    EffectClass::DataFsync => stats.data_fsyncs += 1,
                    EffectClass::DirFsync => stats.dir_fsyncs += 1,
                    EffectClass::DeltaAppend => stats.delta_appends += 1,
                    EffectClass::VolatileWrite => {}
                }
            }
        }
        items.push(seq);
    }
    // Pass 3: inline to fixpoint and check every rule. Each function is
    // evaluated on its own sites with callee summaries as context.
    let mut memo = vec![None; fns.len()];
    let mut on_stack = vec![false; fns.len()];
    let mut out = BTreeSet::new();
    for i in 0..fns.len() {
        let mut seq: Vec<(EffectClass, Site, bool)> = Vec::new();
        for it in &items[i] {
            match it {
                Item::Eff(class, site) => seq.push((*class, *site, true)),
                Item::Call(j) => seq.extend(
                    resolve(*j, &items, &mut memo, &mut on_stack)
                        .into_iter()
                        .map(|(c, s)| (c, s, false)),
                ),
            }
        }
        eval_sequence(&seq, &mut out);
        eval_discards(&fns[i], &mut out);
    }
    (out.into_iter().collect(), stats)
}

/// Runs the checker against `root` (defaults to the current directory).
pub fn run(root: Option<&str>) -> ExitCode {
    let root = Path::new(root.unwrap_or("."));
    let mut owned = Vec::with_capacity(TARGETS.len());
    for rel in TARGETS {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => owned.push(s),
            Err(e) => {
                eprintln!("lint-durability: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let srcs: Vec<&str> = owned.iter().map(String::as_str).collect();
    let (violations, stats) = scan_sources(&srcs);
    for v in &violations {
        eprintln!("{}:{}: [{}] {}", TARGETS[v.file], v.line, v.rule, v.what);
    }
    // Anchor floors: the real corpus has (at least) the manifest commit
    // and the log seal renames, two ack sites, the CLEAN and sealed-log
    // unlinks, and the staged-harden / log / blob-log fsyncs (the blob
    // sinks `.blob_append(`/`.blob_sync(` alone contribute several data
    // fsyncs). Fewer means the scanner lost its tokens, not that the
    // code got cleaner.
    let floors_ok = stats.renames >= 2
        && stats.acks >= 2
        && stats.meta_unlinks >= 2
        && stats.data_fsyncs >= 8
        && stats.dir_fsyncs >= 1
        && stats.delta_appends >= 1;
    if !floors_ok {
        eprintln!("lint-durability: anchor census below floor ({stats:?}) — scanner broken?");
        return ExitCode::FAILURE;
    }
    if !violations.is_empty() {
        eprintln!("lint-durability: {} violation(s)", violations.len());
        return ExitCode::FAILURE;
    }
    println!(
        "lint-durability: ok ({} fns; {} rename / {} ack / {} unlink / {} delta anchors, \
         {} data + {} dir fsyncs; 0 violations)",
        stats.fns,
        stats.renames,
        stats.acks,
        stats.meta_unlinks,
        stats.delta_appends,
        stats.data_fsyncs,
        stats.dir_fsyncs,
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Violation> {
        scan_sources(&[src]).0
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    /// The full manifest-commit shape (the real `commit_file_atomic`)
    /// is conformant, including the dir-fsync reclassification of
    /// `sync_all` inside `sync_dir`.
    #[test]
    fn conformant_commit_protocol_passes() {
        let src = "
            fn commit_file_atomic(dir: &Path, name: &str, text: &str) -> Result<()> {
                let mut f = File::create(dir.join(tmp))?;
                f.write_all(text.as_bytes())?;
                f.sync_data()?;
                fs::rename(dir.join(tmp), dir.join(name))?;
                sync_dir(dir)
            }
            fn sync_dir(dir: &Path) -> Result<()> {
                fs::File::open(dir)?.sync_all()?;
                Ok(())
            }
        ";
        assert_eq!(scan(src), vec![]);
    }

    /// Seeded mutant: the data fsync dropped before the rename.
    #[test]
    fn rename_without_data_fsync_is_caught() {
        let src = "
            fn commit(dir: &Path) -> Result<()> {
                f.write_all(text)?;
                fs::rename(a, b)?;
                sync_dir(dir)
            }
            fn sync_dir(dir: &Path) -> Result<()> {
                fs::File::open(dir)?.sync_all()?;
                Ok(())
            }
        ";
        let v = scan(src);
        assert_eq!(rules_of(&v), vec!["rename-after-data-fsync"], "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    /// Seeded mutant: the dir fsync dropped after the rename.
    #[test]
    fn rename_without_dir_fsync_is_caught() {
        let src = "
            fn commit(dir: &Path) -> Result<()> {
                f.write_all(text)?;
                f.sync_data()?;
                fs::rename(a, b)?;
                Ok(())
            }
        ";
        let v = scan(src);
        assert_eq!(rules_of(&v), vec!["rename-then-dir-fsync"], "{v:?}");
    }

    /// A rename with no prior write-class effect is vacuously ordered —
    /// `CommitLog::seal`'s shape (every sealed byte was fsynced by the
    /// commit that appended it).
    #[test]
    fn write_free_rename_is_vacuously_ordered() {
        let src = "
            fn seal(&mut self) -> Result<()> {
                fs::rename(self.dir.join(a), self.dir.join(b))?;
                sync_dir(&self.dir)?;
                Ok(())
            }
            fn sync_dir(dir: &Path) -> Result<()> {
                fs::File::open(dir)?.sync_all()?;
                Ok(())
            }
        ";
        assert_eq!(scan(src), vec![]);
    }

    /// Seeded mutant: an answer cell filled with `Ok` before any fsync.
    #[test]
    fn ack_before_fsync_is_caught() {
        let src = "
            fn commit_round(q: &Q) {
                *q.cell.0.lock() = Some(Ok(n));
            }
        ";
        let v = scan(src);
        assert_eq!(rules_of(&v), vec!["ack-after-fsync"], "{v:?}");
    }

    /// The conformant ack shape: the round's fsync arrives via the
    /// *inlined* `log.commit(..)` summary, and the failure-path
    /// `set_len` rollback after the fsync does not re-indict the ack
    /// (existence semantics, not nearest).
    #[test]
    fn inlined_log_fsync_satisfies_the_ack_rule() {
        let src = "
            impl CommitLog for DirCommitLog {
                fn commit(&mut self, bytes: &[u8]) -> Result<()> {
                    self.file.write_all(bytes)?;
                    self.file.sync_data()?;
                    if failed {
                        self.file.set_len(self.len)?;
                    }
                    Ok(())
                }
            }
            fn commit_round(q: &Q, log: &mut DirCommitLog) {
                log.commit(&bytes)?;
                *q.cell.0.lock() = Some(Ok(n));
            }
        ";
        assert_eq!(scan(src), vec![]);
    }

    /// Seeded mutant: the CLEAN unlink without its dir fsync; and a
    /// best-effort stray-file unlink carries no obligation.
    #[test]
    fn clean_unlink_without_dir_fsync_is_caught() {
        let bad = "
            fn clear_clean_marker(&self) -> Result<()> {
                fs::remove_file(self.dir.join(CLEAN))?;
                Ok(())
            }
        ";
        let v = scan(bad);
        assert_eq!(rules_of(&v), vec!["clean-unlink-then-dir-fsync"], "{v:?}");
        let good = "
            fn clear_clean_marker(&self) -> Result<()> {
                fs::remove_file(self.dir.join(CLEAN))?;
                sync_dir(&self.dir)
            }
            fn sync_dir(dir: &Path) -> Result<()> {
                fs::File::open(dir)?.sync_all()?;
                Ok(())
            }
            fn remove_stale(&self) {
                let _ = fs::remove_file(e.path());
            }
        ";
        assert_eq!(scan(good), vec![]);
    }

    /// Seeded mutants: discarded sync-class results, each discard
    /// spelling; the sanctioned sink is exempt.
    #[test]
    fn discarded_sync_results_are_caught() {
        let src = "
            fn sloppy(&mut self) {
                let _ = self.file.sync_data();
                self.log.commit(&bytes).ok();
                best_effort(self.file.sync_data());
            }
        ";
        let v = scan(src);
        assert_eq!(
            rules_of(&v),
            vec!["no-discarded-sync-result", "no-discarded-sync-result"],
            "{v:?}"
        );
        assert_eq!(v[0].line, 3);
        assert_eq!(v[1].line, 4);
    }

    /// Non-vacuity, lint layer: every lint-enabled rule of the shared
    /// table fires on at least one seeded mutant.
    #[test]
    fn every_lint_rule_fires_on_a_seeded_mutant() {
        let mutants: &[(&str, &str)] = &[
            (
                "rename-after-data-fsync",
                "fn f() { g.write_all(b)?; fs::rename(a, b)?; h.sync_all()?; }",
            ),
            ("rename-then-dir-fsync", "fn f() { g.sync_data()?; fs::rename(a, b)?; }"),
            ("ack-after-fsync", "fn f(q: &Q) { *q.cell.0.lock() = Some(Ok(1)); }"),
            ("clean-unlink-then-dir-fsync", "fn f(d: &Path) { fs::remove_file(d.join(CLEAN))?; }"),
            ("no-discarded-sync-result", "fn f(g: &File) { let _ = g.sync_data(); }"),
            (
                "delta-append-after-data-fsync",
                "fn f() { g.write_all(b)?; m.append_manifest_delta(&frame)?; }",
            ),
        ];
        for rule in RULES.iter().filter(|r| r.lint) {
            let (_, src) = mutants
                .iter()
                .find(|(name, _)| *name == rule.name)
                .unwrap_or_else(|| panic!("no seeded mutant for lint rule {}", rule.name));
            let v = scan(src);
            assert!(
                v.iter().any(|x| x.rule == rule.name),
                "mutant for {} did not fire it: {v:?}",
                rule.name
            );
        }
    }

    /// Seeded mutant: a manifest-delta append with a bare buffered
    /// write as its nearest predecessor; the fsync'd shape passes, and
    /// a write-free append (the real `write_manifest_delta` shape,
    /// whose table bytes were fsynced by the harden that called it) is
    /// vacuously ordered.
    #[test]
    fn delta_append_without_data_fsync_is_caught() {
        let bad = "
            fn harden(&mut self) -> Result<()> {
                self.file.write_all(bytes)?;
                self.media.append_manifest_delta(&frame)?;
                Ok(())
            }
        ";
        let v = scan(bad);
        assert_eq!(rules_of(&v), vec!["delta-append-after-data-fsync"], "{v:?}");
        assert_eq!(v[0].line, 4);
        let good = "
            fn harden(&mut self) -> Result<()> {
                self.file.write_all(bytes)?;
                self.file.sync_data()?;
                self.media.append_manifest_delta(&frame)?;
                Ok(())
            }
            fn delta_only(&mut self) -> Result<()> {
                self.media.append_manifest_delta(&frame)?;
                Ok(())
            }
        ";
        assert_eq!(scan(good), vec![]);
    }

    /// Inlining binds real over sim on a name collision: the sim twin's
    /// effect-free `commit` must not launder the ack.
    #[test]
    fn name_collisions_bind_the_canonical_impl() {
        let src = "
            impl CommitLog for SimCommitLog {
                fn commit(&mut self, bytes: &[u8]) -> Result<()> {
                    self.env.meta_put(COMMITLOG, bytes)
                }
            }
            impl CommitLog for DirCommitLog {
                fn commit(&mut self, bytes: &[u8]) -> Result<()> {
                    self.file.write_all(bytes)?;
                    self.file.sync_data()
                }
            }
            fn commit_round(q: &Q, log: &mut L) {
                log.commit(&bytes)?;
                *q.cell.0.lock() = Some(Ok(n));
            }
        ";
        assert_eq!(scan(src), vec![]);
    }

    /// A wedge fill (`Some(Err(..))`) is a failure, not an ack: no
    /// durability promise, no anchor.
    #[test]
    fn error_fills_are_not_acks() {
        let src = "
            fn wedge(q: &Q, why: &str) {
                *q.cell.0.lock() = Some(Err(why.clone()));
            }
        ";
        assert_eq!(scan(src), vec![]);
    }

    /// The real persistence paths pass the lint — the same invocation
    /// CI gates on — and the anchor census clears its floors, so the
    /// pass is provably non-vacuous on the real corpus.
    #[test]
    fn real_persistence_paths_pass() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
        let owned: Vec<String> =
            TARGETS.iter().map(|rel| std::fs::read_to_string(root.join(rel)).unwrap()).collect();
        let srcs: Vec<&str> = owned.iter().map(String::as_str).collect();
        let (v, stats) = scan_sources(&srcs);
        let pretty: Vec<String> = v
            .iter()
            .map(|x| format!("{}:{}: [{}] {}", TARGETS[x.file], x.line, x.rule, x.what))
            .collect();
        assert!(pretty.is_empty(), "{pretty:#?}");
        assert!(stats.renames >= 2, "{stats:?}");
        assert!(stats.acks >= 2, "{stats:?}");
        assert!(stats.meta_unlinks >= 2, "{stats:?}");
        assert!(stats.data_fsyncs >= 8, "{stats:?}");
        assert!(stats.dir_fsyncs >= 1, "{stats:?}");
        assert!(stats.delta_appends >= 1, "{stats:?}");
    }
}
