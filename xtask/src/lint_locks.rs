//! `lint-locks`: static lock-discipline checker for the commit path.
//!
//! The model checker (`crates/sync`, `--features model`) proves the
//! *protocols* right on bounded instances; this pass pins the *source*
//! to the discipline those proofs assume. It scans the real guard
//! acquisition sites in `crates/core/src/service.rs` and
//! `crates/core/src/sharded.rs` and enforces, per function body:
//!
//! 1. **Lock-order hierarchy.** Acquiring a guard while another is
//!    live is only legal for the whitelisted nestings:
//!    `Buf → Cell` (ack cells are filled under the buffer lock — that
//!    is what makes the writers' check-then-park race-free) and
//!    `Store → Round` (the harden's stage gates run under the store
//!    lock). Everything else — above all `Buf → Store` or its
//!    inversion — is a violation.
//!
//! 2. **No fsync-class call under a hot guard.** `Buf`, `CoordState`,
//!    `Cell` and `Round` guards are on the writers' latency path; a
//!    physical sync (`log.commit`, `log.truncate()`, `store.sync()`,
//!    `harden*`) must never run while one is live. The `Store` (and
//!    sharded `Table`) guards *are* the store's own serialization and
//!    legitimately span their hardens.
//!
//! 3. **Wait hygiene.** `Condvar::wait`/`wait_timeout` may only be
//!    reached with the waited-on guard live — parking while holding a
//!    second lock deadlocks whoever needs it to produce the wakeup.
//!
//! The checker is a line scanner, not a compiler: strings and comments
//! are stripped, brace depth scopes named guards (`let [mut] g =
//! recv.lock();`), `drop(g)` releases early, `g = cv.wait(g)`
//! rebindings keep the guard live, and bare `recv.lock()` temporaries
//! live to the end of their line. It is intraprocedural by design —
//! cross-function interleavings are the model checker's half of the
//! bargain. Any `.lock()` whose receiver it cannot classify is itself
//! an error, so the catalog below can never silently rot.

use std::fmt;
use std::path::Path;
use std::process::ExitCode;

use crate::scan::{clean_source, ident_after, named_binding, receiver_before};

/// Which mutex a guard came from, classified by the receiver path's
/// suffix (`shard.buf`, `coord.state`, `cell.0`, ...).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum GuardClass {
    /// `Shard::buf` — enqueue/ack buffer (`BufState`).
    Buf,
    /// `Shard::store` — the `KvStore` under the shard.
    Store,
    /// `SyncCoordinator::state` — dirty set, epoch, shutdown.
    Coord,
    /// `RoundSync::m` — the harden stage barrier.
    Round,
    /// `OpCell::0` — a writer's ack slot.
    Cell,
    /// `ShardedKvStore` table locks (sharded.rs): plain per-shard
    /// stores, same standing as `Store`.
    Table,
}

impl fmt::Display for GuardClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GuardClass::Buf => "Buf",
            GuardClass::Store => "Store",
            GuardClass::Coord => "CoordState",
            GuardClass::Round => "RoundSync",
            GuardClass::Cell => "Cell",
            GuardClass::Table => "Table",
        };
        f.write_str(s)
    }
}

/// The only guard pairs allowed to nest (outer, inner).
const ALLOWED_NESTINGS: &[(GuardClass, GuardClass)] =
    &[(GuardClass::Buf, GuardClass::Cell), (GuardClass::Store, GuardClass::Round)];

/// Calls that reach a physical sync (or frame one): forbidden while
/// any hot-path guard is live.
const FSYNC_TOKENS: &[&str] = &[
    ".commit(",
    ".truncate()",
    ".sync()",
    ".harden(",
    ".harden_flush(",
    ".harden_data_sync(",
    ".harden_commit(",
];

/// Guards that must never span an fsync-class call.
fn fsync_forbidden(class: GuardClass) -> bool {
    matches!(class, GuardClass::Buf | GuardClass::Coord | GuardClass::Cell | GuardClass::Round)
}

fn classify(recv: &str, table_file: bool) -> Option<GuardClass> {
    let recv = recv.trim_start_matches(['&', '*']);
    if recv.ends_with(".0") {
        Some(GuardClass::Cell)
    } else if recv.ends_with("buf") {
        Some(GuardClass::Buf)
    } else if recv.ends_with("store") {
        Some(GuardClass::Store)
    } else if recv.ends_with("state") {
        Some(GuardClass::Coord)
    } else if recv == "m" || recv.ends_with(".m") {
        Some(GuardClass::Round)
    } else if table_file {
        Some(GuardClass::Table)
    } else {
        None
    }
}

#[derive(Debug)]
struct Violation {
    line: usize,
    what: String,
}

struct LiveGuard {
    name: String,
    class: GuardClass,
    depth: usize,
    line: usize,
}

fn scan_source(src: &str, table_file: bool) -> (Vec<Violation>, usize) {
    let cleaned = clean_source(src);
    let mut violations = Vec::new();
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    let mut sites = 0usize;

    for (ln0, text) in cleaned.lines().enumerate() {
        let ln = ln0 + 1;
        let chars: Vec<char> = text.chars().collect();
        let named = named_binding(text);
        let mut temps: Vec<(String, GuardClass)> = Vec::new();

        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }

            let rest: String = chars[i..].iter().collect();

            if rest.starts_with(".lock()") {
                sites += 1;
                let recv = receiver_before(&chars, i);
                match classify(&recv, table_file) {
                    None => violations.push(Violation {
                        line: ln,
                        what: format!(
                            "unclassified lock receiver `{recv}` — add it to the \
                             guard catalog in xtask/src/lint_locks.rs"
                        ),
                    }),
                    Some(class) => {
                        let rebind = named
                            .as_ref()
                            .is_some_and(|(n, _)| guards.iter().any(|g| g.name == *n));
                        for (outer_name, outer) in guards
                            .iter()
                            .map(|g| (g.name.as_str(), g.class))
                            .chain(temps.iter().map(|(n, c)| (n.as_str(), *c)))
                        {
                            if rebind && named.as_ref().is_some_and(|(n, _)| n == outer_name) {
                                continue;
                            }
                            if !ALLOWED_NESTINGS.contains(&(outer, class)) {
                                violations.push(Violation {
                                    line: ln,
                                    what: format!(
                                        "{outer} guard `{outer_name}` still live while \
                                         acquiring {class} (`{recv}`): only \
                                         Buf→Cell and Store→RoundSync may nest"
                                    ),
                                });
                            }
                        }
                        match &named {
                            Some((name, pos)) if *pos == i => {
                                guards.retain(|g| g.name != *name);
                                guards.push(LiveGuard {
                                    name: name.clone(),
                                    class,
                                    depth,
                                    line: ln,
                                });
                            }
                            _ => temps.push((recv, class)),
                        }
                    }
                }
                i += ".lock()".len();
                continue;
            }

            if rest.starts_with("drop(") {
                let name = ident_after(text, i + "drop(".len());
                guards.retain(|g| g.name != name);
                i += "drop(".len();
                continue;
            }

            for pat in [".wait(", ".wait_timeout("] {
                if rest.starts_with(pat) {
                    let arg = ident_after(text, i + pat.len());
                    for g in guards.iter().filter(|g| g.name != arg) {
                        violations.push(Violation {
                            line: ln,
                            what: format!(
                                "{} guard `{}` (acquired line {}) held across a \
                                 condvar wait on `{arg}` — a parked thread must \
                                 hold only the guard it waits on",
                                g.class, g.name, g.line
                            ),
                        });
                    }
                }
            }

            for pat in FSYNC_TOKENS {
                if rest.starts_with(pat) {
                    for (name, class) in guards
                        .iter()
                        .map(|g| (g.name.as_str(), g.class))
                        .chain(temps.iter().map(|(n, c)| (n.as_str(), *c)))
                    {
                        if fsync_forbidden(class) {
                            violations.push(Violation {
                                line: ln,
                                what: format!(
                                    "fsync-class call `{}...)` while {class} guard \
                                     `{name}` is live — syncs must never run on \
                                     the writers' lock path",
                                    &pat[..pat.len() - 1]
                                ),
                            });
                        }
                    }
                }
            }

            i += 1;
        }
    }
    (violations, sites)
}

/// The files under discipline, relative to the repo root.
const TARGETS: &[(&str, bool)] =
    &[("crates/core/src/service.rs", false), ("crates/core/src/sharded.rs", true)];

/// Runs the checker against `root` (defaults to the current directory).
pub fn run(root: Option<&str>) -> ExitCode {
    let root = Path::new(root.unwrap_or("."));
    let mut total = 0usize;
    let mut sites = 0usize;
    for (rel, table_file) in TARGETS {
        let path = root.join(rel);
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lint-locks: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let (violations, n) = scan_source(&src, *table_file);
        sites += n;
        for v in &violations {
            eprintln!("{rel}:{}: {}", v.line, v.what);
        }
        total += violations.len();
    }
    if total > 0 {
        eprintln!("lint-locks: {total} violation(s) across {} file(s)", TARGETS.len());
        ExitCode::FAILURE
    } else {
        println!("lint-locks: ok ({sites} lock sites checked, 0 violations)");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Violation> {
        scan_source(src, false).0
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        let src = r#"
            fn f(s: &S) {
                // let g = s.buf.lock(); s.store.harden_flush();
                let msg = "holding buf.lock() across .commit( here";
                let why = 'x';
            }
        "#;
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn buf_to_cell_nesting_is_allowed() {
        let src = "
            fn f(s: &S) {
                let mut buf = s.buf.lock();
                *q.cell.0.lock() = Some(Err(why.clone()));
            }
        ";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn buf_store_inversion_is_caught() {
        let src = "
            fn f(s: &S) {
                let mut store = s.store.lock();
                let buf = s.buf.lock();
            }
        ";
        let v = scan(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].what.contains("Store guard `store` still live"), "{v:?}");
    }

    #[test]
    fn scope_exit_releases_the_guard() {
        let src = "
            fn f(s: &S) {
                {
                    let buf = s.buf.lock();
                }
                let mut store = s.store.lock();
                store.harden_flush()?;
            }
        ";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "
            fn f(s: &S) {
                let buf = s.buf.lock();
                drop(buf);
                log.commit(&bytes)?;
            }
        ";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn fsync_under_buf_guard_is_caught() {
        let src = "
            fn f(s: &S) {
                let mut buf = s.buf.lock();
                log.commit(&bytes)?;
            }
        ";
        let v = scan(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].what.contains("fsync-class call `.commit"), "{v:?}");
    }

    #[test]
    fn fsync_under_store_guard_is_fine() {
        let src = "
            fn f(s: &S) {
                let mut store = s.store.lock();
                store.harden_flush()?;
                store.harden_data_sync()?;
                store.harden_commit(set_marker)?;
            }
        ";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn temporary_guard_spans_only_its_line() {
        let src = "
            fn f(s: &S) {
                if s.buf.lock().wedged.is_some() { return; }
                log.commit(&bytes)?;
            }
        ";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn fsync_on_a_temporary_buf_guard_is_caught() {
        let src = "
            fn f(s: &S) {
                s.buf.lock().history.commit(x);
            }
        ";
        let v = scan(src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn wait_with_second_guard_is_caught() {
        let src = "
            fn f(s: &S) {
                let mut store = s.store.lock();
                let mut buf = s.buf.lock();
                buf = s.ack_cv.wait(buf);
            }
        ";
        let v = scan(src);
        // The illegal nesting AND the illegal wait both fire.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[1].what.contains("held across a condvar wait"), "{v:?}");
    }

    #[test]
    fn wait_rebinding_keeps_the_guard_live() {
        let src = "
            fn f(s: &S) {
                let mut st = s.state.lock();
                st = s.cv.wait(st);
                st = s.cv.wait(st);
            }
        ";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn reacquisition_after_drop_is_not_a_nesting() {
        let src = "
            fn f(s: &S) {
                let mut buf = s.buf.lock();
                drop(buf);
                buf = s.buf.lock();
            }
        ";
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn unknown_receiver_is_an_error() {
        let src = "
            fn f(s: &S) {
                let g = s.mystery.lock();
            }
        ";
        let v = scan(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].what.contains("unclassified lock receiver"), "{v:?}");
    }

    #[test]
    fn table_locks_classify_in_sharded_files() {
        let src = "
            fn f(&self, key: Key) {
                self.shards[self.shard_of(key)].lock().insert(key, value)
            }
        ";
        let (v, sites) = scan_source(src, true);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(sites, 1);
    }

    #[test]
    fn real_commit_path_passes() {
        // The actual discipline holds on the actual sources — the same
        // invocation CI gates on, runnable from the workspace root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
        for (rel, table_file) in TARGETS {
            let src = std::fs::read_to_string(root.join(rel)).unwrap();
            let (v, sites) = scan_source(&src, *table_file);
            assert!(sites > 5, "{rel}: only {sites} lock sites found — scanner broken?");
            assert!(v.is_empty(), "{rel}: {v:#?}");
        }
    }
}
