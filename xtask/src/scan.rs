//! Shared source-scanner core for the `xtask` lints.
//!
//! Both static passes — `lint-locks` (lock discipline on the commit
//! path) and `lint-durability` (fsync/rename ordering on the
//! persistence paths) — are line scanners over *cleaned* source: not
//! compilers. This module owns the pieces they share:
//!
//! * [`clean_source`] — replaces comments, string literals and char
//!   literals with spaces (newlines preserved) so token scans never
//!   trip over `".lock()"` in a doc sentence;
//! * [`receiver_before`] — walks back from a `.method(` to recover the
//!   receiver path expression;
//! * [`named_binding`] / [`ident_after`] — small line-shape helpers;
//! * [`split_functions`] — brace-depth item walker that attributes each
//!   cleaned line to its enclosing `fn` (with the surrounding `impl`
//!   target), skipping `mod tests` blocks.
//!
//! Behavior is deliberately identical to the scanner `lint-locks`
//! shipped with — its unit tests pin the semantics.

/// Replaces comments, string literals and char literals with spaces so
/// a token scanner never trips over `".lock()"` in a doc sentence.
/// Newlines are preserved, so line numbers survive cleaning.
pub fn clean_source(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        Str,
        RawStr(usize),
        Chr,
        Line,
        Block(usize),
    }
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => match c {
                '/' if b.get(i + 1) == Some(&'/') => {
                    st = St::Line;
                    out.push(' ');
                }
                '/' if b.get(i + 1) == Some(&'*') => {
                    st = St::Block(1);
                    out.push(' ');
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                }
                'r' if b.get(i + 1) == Some(&'"') || b.get(i + 1) == Some(&'#') => {
                    // r"..." / r#"..."# — count the hashes.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        out.push(' ');
                        while i < j {
                            out.push(' ');
                            i += 1;
                        }
                    } else {
                        out.push(c);
                    }
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let is_char = matches!(
                        (b.get(i + 1), b.get(i + 2)),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    if is_char {
                        st = St::Chr;
                    }
                    out.push(' ');
                }
                _ => out.push(c),
            },
            St::Str => {
                if c == '\\' {
                    i += 1;
                    out.push(' ');
                } else if c == '"' {
                    st = St::Code;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            St::RawStr(h) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < h && b.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == h {
                        st = St::Code;
                        while i < j {
                            out.push(' ');
                            i += 1;
                        }
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            St::Chr => {
                if c == '\\' {
                    i += 1;
                    out.push(' ');
                } else if c == '\'' {
                    st = St::Code;
                }
                out.push(' ');
            }
            St::Line => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::Block(d) => {
                if c == '*' && b.get(i + 1) == Some(&'/') {
                    st = if d == 1 { St::Code } else { St::Block(d - 1) };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::Block(d + 1);
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
        }
        i += 1;
    }
    out
}

/// Walks backwards from the `.` of `.lock()` (or any method call) and
/// returns the receiver path expression (`shards[*si].store`,
/// `q.cell.0`, ...).
pub fn receiver_before(line: &[char], dot: usize) -> String {
    let mut start = dot;
    let mut par = 0i32;
    let mut brk = 0i32;
    while start > 0 {
        let c = line[start - 1];
        let plain = c.is_alphanumeric() || c == '_' || c == '.' || c == ']' || c == ')';
        if par == 0 && brk == 0 && !plain {
            break;
        }
        match c {
            ')' => par += 1,
            '(' => {
                par -= 1;
                if par < 0 {
                    break;
                }
            }
            ']' => brk += 1,
            '[' => {
                brk -= 1;
                if brk < 0 {
                    break;
                }
            }
            _ => {}
        }
        start -= 1;
    }
    line[start..dot].iter().collect()
}

/// If the (cleaned) line is a whole-guard binding — `let [mut] NAME =
/// <recv>.lock();` or `NAME = <recv>.lock();` — returns the bound name
/// and the position of that `.lock()` occurrence.
pub fn named_binding(text: &str) -> Option<(String, usize)> {
    let trimmed = text.trim_end();
    if !trimmed.ends_with(".lock();") {
        return None;
    }
    let lock_pos = text.rfind(".lock()")?;
    let eq = text.find('=')?;
    if eq > lock_pos {
        return None;
    }
    let lhs = text[..eq].trim();
    let lhs = lhs.strip_prefix("let ").unwrap_or(lhs);
    let lhs = lhs.strip_prefix("mut ").unwrap_or(lhs).trim();
    if !lhs.is_empty() && lhs.chars().all(|c| c.is_alphanumeric() || c == '_') {
        Some((lhs.to_string(), lock_pos))
    } else {
        None
    }
}

/// Extracts the identifier starting at byte `open`, e.g. the `buf` of
/// `drop(buf)` or `.wait(buf)`.
pub fn ident_after(text: &str, open: usize) -> String {
    text[open..].chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect()
}

/// One function body recovered from cleaned source: its name, the
/// `impl` target it sits in (if any), and its lines.
#[derive(Debug)]
pub struct FnBody {
    /// The surrounding `impl` block's self type (`DirCommitLog` for
    /// `impl CommitLog for DirCommitLog`), or `None` for free functions.
    pub imp: Option<String>,
    /// The function's name.
    pub name: String,
    /// The body's cleaned lines as `(1-based line, text)` — including
    /// any text on the opening-brace line itself.
    pub body: Vec<(usize, String)>,
}

/// The name bound by `fn NAME` in an item header, if the header is a
/// function definition (`impl Fn(..)` bounds do not match: `fn` must be
/// a standalone word).
fn fn_name_of(header: &str) -> Option<String> {
    let mut search = 0;
    while let Some(rel) = header[search..].find("fn ") {
        let at = search + rel;
        let prev_ok = at == 0
            || header[..at].chars().next_back().is_some_and(|p| !(p.is_alphanumeric() || p == '_'));
        if prev_ok {
            let name: String = header[at + 3..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        search = at + 3;
    }
    None
}

/// The self type of an `impl` header: `impl Foo` → `Foo`,
/// `impl Trait for Foo<T>` → `Foo`, `impl<T> Foo<T>` → `Foo`.
fn impl_target(header: &str) -> Option<String> {
    let rest = header.strip_prefix("impl")?;
    let rest = if let Some(after) = rest.strip_prefix('<') {
        // Skip the generic parameter list (balanced angle brackets).
        let mut depth = 1i32;
        let mut cut = after.len();
        for (i, c) in after.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        &after[cut..]
    } else if rest.starts_with(char::is_whitespace) {
        rest
    } else {
        return None; // `implements`, not `impl `
    };
    let target = match rest.find(" for ") {
        Some(i) => &rest[i + 5..],
        None => rest,
    };
    let name: String = target
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == ':')
        .collect();
    let name = name.rsplit(':').next().unwrap_or("").to_string();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Splits cleaned source into function bodies, attributing every line
/// to its innermost enclosing `fn`. `mod tests` blocks are skipped —
/// the lints gate the production persistence paths, and test helpers
/// deliberately violate protocols (seeded mutants).
pub fn split_functions(cleaned: &str) -> Vec<FnBody> {
    enum Kind {
        Fn(usize),
        Impl,
        TestMod,
        Other,
    }
    let mut out: Vec<FnBody> = Vec::new();
    let mut stack: Vec<Kind> = Vec::new();
    let mut impls: Vec<String> = Vec::new();
    let mut header = String::new();
    let mut line = 1usize;

    for c in cleaned.chars() {
        match c {
            '{' => {
                let h = header.trim();
                let in_tests = stack.iter().any(|k| matches!(k, Kind::TestMod));
                // `mod tests` as a word pair — the header usually also
                // carries the `#[cfg(test)]` attribute before it.
                let is_test_mod = h
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .windows(2)
                    .any(|w| w == ["mod", "tests"]);
                let kind = if is_test_mod {
                    Kind::TestMod
                } else if let Some(name) = fn_name_of(h) {
                    if in_tests {
                        Kind::Other
                    } else {
                        out.push(FnBody { imp: impls.last().cloned(), name, body: Vec::new() });
                        Kind::Fn(out.len() - 1)
                    }
                } else if let Some(target) = impl_target(h) {
                    impls.push(target);
                    Kind::Impl
                } else {
                    Kind::Other
                };
                stack.push(kind);
                header.clear();
            }
            '}' => {
                if let Some(Kind::Impl) = stack.pop() {
                    impls.pop();
                }
                header.clear();
            }
            // Headers never span `;`; newlines join multi-line
            // signatures (no `{`/`;` yet) with a space.
            ';' => header.clear(),
            '\n' => header.push(' '),
            _ => header.push(c),
        }
        // Attribute the character to the innermost live fn body.
        if let Some(Kind::Fn(idx)) = stack.iter().rev().find(|k| matches!(k, Kind::Fn(_))) {
            let fun = &mut out[*idx];
            match fun.body.last_mut() {
                Some((l, text)) if *l == line && c != '\n' => text.push(c),
                _ if c != '\n' => fun.body.push((line, c.to_string())),
                _ => {}
            }
        }
        if c == '\n' {
            line += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_recovers_impl_methods_and_free_fns() {
        let src = "
            fn free_one(x: u32) -> u32 {
                x + 1
            }
            impl CommitLog for DirCommitLog {
                fn commit(&mut self, bytes: &[u8]) -> Result<()> {
                    self.file.write_all(bytes)?;
                    self.file.sync_data()
                }
            }
            impl<T: Clone> Holder<T> {
                fn put(&mut self, t: T) { self.slot = Some(t); }
            }
        ";
        let fns = split_functions(&clean_source(src));
        let names: Vec<(Option<&str>, &str)> =
            fns.iter().map(|f| (f.imp.as_deref(), f.name.as_str())).collect();
        assert_eq!(
            names,
            vec![(None, "free_one"), (Some("DirCommitLog"), "commit"), (Some("Holder"), "put"),]
        );
        let commit = &fns[1];
        assert!(commit.body.iter().any(|(_, t)| t.contains(".sync_data(")), "{commit:?}");
        // Single-line bodies keep their text.
        assert!(fns[2].body.iter().any(|(_, t)| t.contains("Some(t)")), "{:?}", fns[2]);
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "
            fn real() { work(); }
            mod tests {
                fn mutant() { rename_without_fsync(); }
            }
        ";
        let fns = split_functions(&clean_source(src));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn cfg_attributed_test_modules_are_skipped() {
        let src = "
            fn real() { work(); }
            #[cfg(test)]
            mod tests {
                fn mutant() { rename_without_fsync(); }
            }
        ";
        let fns = split_functions(&clean_source(src));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn nested_blocks_stay_attributed_to_the_fn() {
        let src = "
            impl Store {
                fn sync(&mut self) -> Result<()> {
                    if self.dirty {
                        for s in &mut self.shards {
                            s.flush()?;
                        }
                    }
                    Ok(())
                }
            }
        ";
        let fns = split_functions(&clean_source(src));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].imp.as_deref(), Some("Store"));
        assert!(fns[0].body.iter().any(|(_, t)| t.contains(".flush()")));
    }

    #[test]
    fn multi_line_signatures_bind_the_right_name() {
        let src = "
            fn staggered_checkpoint(
                shards: &[Shard],
                coord: &SyncCoordinator,
                si: usize,
            ) -> bool {
                body();
            }
        ";
        let fns = split_functions(&clean_source(src));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "staggered_checkpoint");
    }

    #[test]
    fn impl_fn_bounds_are_not_function_headers() {
        let src = "
            fn apply(f: impl Fn(usize) -> usize) -> usize {
                f(1)
            }
        ";
        let fns = split_functions(&clean_source(src));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "apply");
    }
}
