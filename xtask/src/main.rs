//! Repo automation tasks, invoked as `cargo run -p xtask -- <cmd>`.
//!
//! Commands:
//!
//! * `lint-locks` — static lock-discipline checker for the commit path
//!   (see `docs/CONCURRENCY.md`). Verifies, against the actual guard
//!   acquisition sites in `crates/core/src/service.rs` and
//!   `crates/core/src/sharded.rs`, that
//!
//!   1. the lock-order hierarchy is respected (buf → store never
//!      inverted; only the whitelisted nestings appear),
//!   2. no fsync-class call runs while a buffer/coordinator/cell/barrier
//!      guard is live, and
//!   3. no `Condvar::wait` happens while a *second* guard is held.
//!
//!   Exits non-zero with `file:line` diagnostics on violation, so CI can
//!   gate on it.

mod lint_locks;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint-locks") => lint_locks::run(args.next().as_deref()),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`");
            eprintln!("usage: cargo run -p xtask -- lint-locks [repo-root]");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint-locks [repo-root]");
            ExitCode::FAILURE
        }
    }
}
