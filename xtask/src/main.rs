//! Repo automation tasks, invoked as `cargo run -p xtask -- <cmd>`.
//!
//! Commands:
//!
//! * `lint-locks` — static lock-discipline checker for the commit path
//!   (see `docs/CONCURRENCY.md`). Verifies, against the actual guard
//!   acquisition sites in `crates/core/src/service.rs` and
//!   `crates/core/src/sharded.rs`, that
//!
//!   1. the lock-order hierarchy is respected (buf → store never
//!      inverted; only the whitelisted nestings appear),
//!   2. no fsync-class call runs while a buffer/coordinator/cell/barrier
//!      guard is live, and
//!   3. no `Condvar::wait` happens while a *second* guard is held.
//!
//! * `lint-durability` — static durability-order checker for the
//!   persistence paths (see `docs/DURABILITY.md`). Classifies every
//!   I/O-effectful call site in the store/media/service/disk sources
//!   into effect classes, builds per-function effect summaries, inlines
//!   them through the commit/recovery entry points, and rejects any
//!   ordering the `dxh-dura` protocol rule table forbids (rename
//!   without a preceding data fsync or a following dir fsync, an ack
//!   released before the round's fsync, a recovery-visible unlink
//!   without its dir fsync, a discarded fsync-class `Result`).
//!
//! Both exit non-zero with `file:line` diagnostics on violation, so CI
//! can gate on them.

mod lint_durability;
mod lint_locks;
mod scan;

use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p xtask -- <lint-locks|lint-durability> [repo-root]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint-locks") => lint_locks::run(args.next().as_deref()),
        Some("lint-durability") => lint_durability::run(args.next().as_deref()),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
